"""Tests for the bounded-diameter decomposition and dual bags."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd import build_all_dual_bags, build_bdd, build_dual_bag, \
    validate_bdd
from repro.congest import RoundLedger
from repro.planar.generators import (
    cylinder,
    grid,
    outerplanar_fan,
    random_planar,
    triangulated_disk,
    wheel,
)
from repro.planar.graph import rev


@pytest.fixture(params=[
    ("grid66", lambda: grid(6, 6), 12),
    ("grid312", lambda: grid(3, 12), 10),
    ("cyl", lambda: cylinder(4, 8), 12),
    ("rand", lambda: random_planar(70, seed=4), 16),
    ("disk", lambda: triangulated_disk(4), 16),
    ("sparse", lambda: random_planar(60, seed=11, keep=0.75), 14),
])
def decomposition(request):
    _name, maker, leaf = request.param
    g = maker()
    bdd = build_bdd(g, leaf_size=leaf)
    return g, bdd


class TestBddStructure:
    def test_validates(self, decomposition):
        g, bdd = decomposition
        report = validate_bdd(bdd)
        assert report.depth >= 1
        assert report.max_face_parts >= 0

    def test_root_is_graph(self, decomposition):
        g, bdd = decomposition
        assert set(bdd.root.edge_ids) == set(range(g.m))

    def test_leaves_small(self, decomposition):
        g, bdd = decomposition
        for leaf in bdd.leaf_bags():
            assert leaf.m <= 2 * bdd.leaf_size + 4

    def test_children_shrink(self, decomposition):
        g, bdd = decomposition
        for bag in bdd.bags:
            for c in bag.children:
                assert c.m < bag.m

    def test_bags_connected(self, decomposition):
        g, bdd = decomposition
        for bag in bdd.bags:
            assert bag.view().is_connected()

    def test_dart_partition_per_level(self, decomposition):
        g, bdd = decomposition
        # every dart of G is live in exactly one deepest bag covering it
        for bag in bdd.bags:
            if bag.is_leaf:
                continue
            union = set()
            for c in bag.children:
                assert not (union & set(c.live_darts))
                union |= set(c.live_darts)
            assert union == set(bag.live_darts)

    def test_separator_recorded(self, decomposition):
        g, bdd = decomposition
        for bag in bdd.bags:
            if bag.is_leaf:
                continue
            assert bag.sx_vertices
            assert bag.ex_endpoints is not None
            u, v = bag.ex_endpoints
            assert {bag.sx_vertices[0], bag.sx_vertices[-1]} == {u, v}

    def test_ledger_charged(self):
        led = RoundLedger()
        build_bdd(grid(6, 6), leaf_size=12, ledger=led)
        assert any(k.startswith("bdd/") for k in led.by_phase())


class TestDualBags:
    def test_root_dual_is_g_star(self, decomposition):
        g, bdd = decomposition
        dual = build_dual_bag(bdd.root)
        assert dual.num_nodes == g.num_faces()
        assert len(dual.arc_darts) == g.num_darts

    def test_arcs_require_both_darts_live(self, decomposition):
        g, bdd = decomposition
        for bag in bdd.bags:
            dual = build_dual_bag(bag)
            live = bag.live_darts
            for d in dual.arc_darts:
                assert d in live and rev(d) in live

    def test_f_x_is_separator(self, decomposition):
        # exercised by validate_bdd, but assert the F_X content here
        g, bdd = decomposition
        for bag in bdd.bags:
            if bag.is_leaf:
                continue
            dual = build_dual_bag(bag)
            for d in dual.sx_arc_darts:
                assert g.face_of[d] in dual.f_x
                assert g.face_of[rev(d)] in dual.f_x
            for f, children in dual.parts_in_children.items():
                assert len(children) >= 2
                assert f in dual.f_x

    def test_child_of_node_correct(self, decomposition):
        g, bdd = decomposition
        for bag in bdd.bags:
            if bag.is_leaf:
                continue
            dual = build_dual_bag(bag)
            for f, c in dual.child_of_node.items():
                if c is None:
                    continue
                darts = set(dual.nodes[f])
                assert darts <= set(c.live_darts)

    def test_all_dual_bags(self, decomposition):
        g, bdd = decomposition
        duals = build_all_dual_bags(bdd)
        assert len(duals) == len(bdd.bags)


class TestFacePartGrowth:
    def test_face_parts_logarithmic(self):
        g = grid(8, 8)
        bdd = build_bdd(g, leaf_size=12)
        report = validate_bdd(bdd)
        assert report.max_face_parts <= 4 * (report.depth + 1) + 2

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=999))
    def test_random_instances_validate(self, seed):
        g = random_planar(30 + seed % 30, seed=seed % 20)
        bdd = build_bdd(g, leaf_size=12)
        validate_bdd(bdd)

    def test_small_graph_single_leaf(self):
        g = wheel(6)
        bdd = build_bdd(g, leaf_size=100)
        assert len(bdd.bags) == 1
        assert bdd.root.is_leaf

    def test_default_leaf_size(self):
        from repro.bdd import default_leaf_size

        g = grid(5, 5)
        assert default_leaf_size(g) >= 16
