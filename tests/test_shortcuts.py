"""Tests for low-congestion shortcuts and part-wise aggregation."""

from repro.congest import RoundLedger
from repro.planar.generators import grid, random_planar, wheel
from repro.shortcuts import build_steiner_shortcuts, partwise_aggregate
from repro.shortcuts.partwise import DualPartwiseHost


def adjacency_of(pg):
    return [pg.neighbors(v) for v in range(pg.n)]


class TestSteinerShortcuts:
    def test_quality_measured(self):
        g = grid(5, 5)
        parts = [[0, 1, 2], [10, 11, 12], [20, 21, 22]]
        sc = build_steiner_shortcuts(adjacency_of(g), parts)
        assert sc.quality.congestion >= 0
        assert sc.quality.dilation >= 2
        assert sc.quality.pa_rounds > 0

    def test_subtree_spans_part(self):
        g = grid(4, 6)
        parts = [[0, 5, 23], [12, 13]]
        sc = build_steiner_shortcuts(adjacency_of(g), parts)
        for i, s in enumerate(parts):
            # part + subtree edges connect all part members
            adj = {}
            for (v, p) in sc.subtrees[i]:
                adj.setdefault(v, set()).add(p)
                adj.setdefault(p, set()).add(v)
            if len(s) == 1:
                continue
            seen = {s[0]}
            stack = [s[0]]
            while stack:
                u = stack.pop()
                for w in adj.get(u, ()):
                    if w not in seen:
                        seen.add(w)
                        stack.append(w)
            assert set(s) <= seen

    def test_connected_parts_have_small_dilation(self):
        g = grid(6, 6)
        # rows as parts (connected): dilation should stay near the row
        # length, not the graph size
        parts = [[r * 6 + c for c in range(6)] for r in range(6)]
        sc = build_steiner_shortcuts(adjacency_of(g), parts)
        assert sc.quality.dilation <= 2 * 6 + 2

    def test_congestion_counts_sharing(self):
        g = grid(2, 8)
        parts = [[0, 15], [1, 14], [2, 13]]  # all cross the middle
        sc = build_steiner_shortcuts(adjacency_of(g), parts)
        assert sc.quality.congestion >= 1


class TestPartwiseAggregate:
    def test_sum_per_part(self):
        g = grid(4, 4)
        parts = [[0, 1, 2, 3], [12, 13, 14, 15]]
        inputs = {v: v for v in range(16)}
        led = RoundLedger()
        out, _sc = partwise_aggregate(adjacency_of(g), parts, inputs,
                                      lambda a, b: a + b, ledger=led)
        assert out == [0 + 1 + 2 + 3, 12 + 13 + 14 + 15]
        assert led.total() > 0

    def test_min_operator_and_missing_inputs(self):
        g = grid(3, 3)
        parts = [[0, 1], [7, 8]]
        inputs = {1: 42, 7: 5, 8: 9}
        out, _ = partwise_aggregate(adjacency_of(g), parts, inputs, min)
        assert out == [42, 5]


class TestDualPartwise:
    def test_node_aggregation_on_dual(self):
        g = grid(3, 3)
        host = DualPartwiseHost(g, ledger=RoundLedger())
        faces = list(range(g.num_faces()))
        # single part: all dual nodes
        out = host.aggregate_node_inputs(
            [faces], {f: 1 for f in faces}, lambda a, b: a + b)
        assert out == [g.num_faces()]

    def test_edge_aggregation_inside_vs_outgoing(self):
        g = grid(3, 3)
        host = DualPartwiseHost(g)
        faces = list(range(g.num_faces()))
        inner = [f for f in faces if len(g.faces[f]) == 4]
        outer = [f for f in faces if len(g.faces[f]) != 4]
        parts = [inner, outer]
        edge_inputs = {eid: 1 for eid in range(g.m)}
        inside = host.aggregate_edge_inputs(parts, edge_inputs,
                                            lambda a, b: a + b)
        outgoing = host.aggregate_edge_inputs(parts, edge_inputs,
                                              lambda a, b: a + b,
                                              outgoing=True)
        # inner faces of 3x3 grid: 4 faces in a 2x2 pattern, 4 shared
        # inner edges; 8 boundary edges leave the part
        assert inside[0] == 4
        assert outgoing[0] == 8
        assert outgoing[1] == 8
        assert inside[1] is None  # outer face part has no internal edge

    def test_pa_cost_scales_with_diameter(self):
        small = DualPartwiseHost(grid(3, 3))
        big = DualPartwiseHost(grid(3, 20))
        assert big.pa_rounds >= small.pa_rounds

    def test_ledger_charged(self):
        led = RoundLedger()
        host = DualPartwiseHost(grid(3, 3), ledger=led)
        host.aggregate_node_inputs([[0]], {0: 1}, min)
        phases = led.by_phase()
        assert any("dual-pa" in k for k in phases)
