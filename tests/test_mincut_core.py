"""Tests for min st-cut (Theorems 6.1/6.2), girth (Theorem 1.7) and
directed global min-cut (Theorem 1.5)."""

import random

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.centralized import (
    centralized_directed_global_mincut,
    centralized_weighted_girth,
)
from repro.congest import RoundLedger
from repro.core import (
    directed_global_mincut,
    flow_value_networkx,
    min_st_cut,
    verify_st_cut,
    weighted_girth,
)
from repro.planar.dual import is_simple_cycle
from repro.planar.generators import (
    bidirect,
    grid,
    random_planar,
    randomize_weights,
    wheel,
)


class TestMinStCut:
    @pytest.mark.parametrize("seed", range(4))
    def test_cut_value_equals_flow(self, seed):
        g = randomize_weights(random_planar(30, seed=seed), seed=seed + 3,
                              directed_capacities=True)
        rng = random.Random(seed)
        s, t = rng.sample(range(g.n), 2)
        res = min_st_cut(g, s, t, directed=True, leaf_size=14)
        assert res.value == flow_value_networkx(g, s, t, directed=True)

    def test_cut_separates(self):
        g = randomize_weights(grid(4, 5), seed=7, directed_capacities=True)
        res = min_st_cut(g, 0, g.n - 1, directed=True, leaf_size=12)
        assert verify_st_cut(g, 0, g.n - 1, res.cut_edge_ids, directed=True)
        assert 0 in res.source_side
        assert g.n - 1 not in res.source_side

    def test_undirected_cut(self):
        g = randomize_weights(grid(4, 4), seed=2)
        res = min_st_cut(g, 0, 15, directed=False, leaf_size=10)
        assert res.value == flow_value_networkx(g, 0, 15, directed=False)
        assert verify_st_cut(g, 0, 15, res.cut_edge_ids, directed=False)

    def test_cut_edges_all_leave_side(self):
        g = randomize_weights(grid(3, 5), seed=4, directed_capacities=True)
        res = min_st_cut(g, 0, 14, directed=True, leaf_size=10)
        side = set(res.source_side)
        for eid in res.cut_edge_ids:
            u, v = g.edges[eid]
            assert u in side and v not in side


class TestGirth:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_centralized(self, seed):
        g = randomize_weights(random_planar(25 + seed, seed=seed),
                              seed=seed + 40)
        res = weighted_girth(g)
        assert res.value == centralized_weighted_girth(g)

    def test_cycle_is_simple_and_weighted_right(self):
        g = randomize_weights(grid(5, 5), seed=6)
        res = weighted_girth(g)
        assert is_simple_cycle(g, res.cycle_edge_ids)
        assert sum(g.weights[e] for e in res.cycle_edge_ids) == res.value

    def test_uniform_weights_grid(self):
        g = grid(4, 4)  # unit weights: girth 4
        res = weighted_girth(g)
        assert res.value == 4
        assert len(res.cycle_edge_ids) == 4

    def test_forest_returns_none(self):
        from repro.planar.generators import path

        assert weighted_girth(path(6)) is None

    def test_ledger_charged_via_ma(self):
        led = RoundLedger()
        g = randomize_weights(grid(4, 4), seed=1)
        weighted_girth(g, ledger=led)
        assert any("girth" in k for k in led.by_phase())

    def test_parallel_dual_edges_summed(self):
        # 2x2 grid: dual has 2 nodes with 4 parallel edges; the girth is
        # the boundary 4-cycle, whose dual cut sums all 4 edges
        g = randomize_weights(grid(2, 2), seed=3)
        res = weighted_girth(g)
        assert res.value == sum(g.weights)
        assert sorted(res.cycle_edge_ids) == [0, 1, 2, 3]


class TestDirectedGlobalMinCut:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_brute_force(self, seed):
        base = randomize_weights(random_planar(14 + seed, seed=seed),
                                 seed=seed + 5)
        g = bidirect(base, seed=seed)
        res = directed_global_mincut(g, leaf_size=12)
        assert res.value == centralized_directed_global_mincut(g)

    def test_cut_is_directed_bisection(self):
        base = randomize_weights(random_planar(15, seed=9), seed=10)
        g = bidirect(base, seed=9)
        res = directed_global_mincut(g, leaf_size=12)
        side = set(res.side)
        assert 0 < len(side) < g.n
        total = 0
        for eid, (u, v) in enumerate(g.edges):
            if u in side and v not in side:
                assert eid in res.cut_edge_ids
                total += g.weights[eid]
        assert total == res.value

    def test_sparse_digraph_zero_cut(self):
        # random orientations leave sinks: min directed cut 0
        g = randomize_weights(random_planar(18, seed=2), seed=2)
        res = directed_global_mincut(g, leaf_size=10)
        assert res.value == centralized_directed_global_mincut(g)

    def test_bridge_cut(self):
        # two wheels joined by one directed bridge: the bridge weight is
        # an upper bound and usually the min cut
        base = randomize_weights(wheel(5), seed=0)
        res = directed_global_mincut(bidirect(base, seed=1), leaf_size=10)
        g = bidirect(base, seed=1)
        assert res.value == centralized_directed_global_mincut(g)


class TestGlobalMinCutProperty:
    @settings(max_examples=6, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_random_bidirected(self, seed):
        base = randomize_weights(
            random_planar(10 + seed % 8, seed=seed % 25), seed=seed)
        g = bidirect(base, seed=seed)
        res = directed_global_mincut(g, leaf_size=10)
        assert res.value == centralized_directed_global_mincut(g)
