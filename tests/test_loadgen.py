"""Unit tests for the open-loop load generator (DESIGN.md §12):
arrival-schedule determinism, nearest-rank percentile math against
hand-computed fixtures, per-kind error accounting with a stub target,
and error-frame counting when pool workers are killed mid-run (the
worker-death harness from ``tests/test_server.py``)."""

import threading

import pytest

from repro.errors import ServiceError
from repro.planar.generators import grid, randomize_weights
from repro.server import QueryServer, ServiceClient, WarmWorkerPool
from repro.service import DistanceQuery, FlowQuery, GirthQuery
from repro.workload import arrival_schedule, percentile, run_load
from test_server import kill_pool_worker


# ----------------------------------------------------------------------
# arrival schedules
# ----------------------------------------------------------------------
class TestArrivalSchedule:
    def test_uniform_schedule_is_paced(self):
        assert arrival_schedule(100.0, 3) == (0.0, 0.01, 0.02)
        assert arrival_schedule(50.0, 0) == ()

    def test_seeded_schedule_deterministic(self):
        a = arrival_schedule(10.0, 50, seed=7)
        b = arrival_schedule(10.0, 50, seed=7)
        assert a == b
        assert len(a) == 50
        assert list(a) == sorted(a)          # arrivals are ordered
        assert arrival_schedule(10.0, 50, seed=8) != a

    def test_seeded_schedule_golden_fixture(self):
        # string seeding runs through sha512, so the draw stream is
        # stable across processes and PYTHONHASHSEED values — these
        # exact floats are the cross-process determinism contract
        assert arrival_schedule(10.0, 4, seed=42) == (
            0.0232359903470568, 0.1525488299490061,
            0.2548626648531628, 0.27259717999070343)

    def test_seeded_schedule_mean_rate(self):
        a = arrival_schedule(200.0, 400, seed=3)
        # mean interarrival of an exponential(rate) draw is 1/rate;
        # with 400 draws the sample mean is within a loose 3x band
        assert 400 / 200.0 / 3 < a[-1] < 400 / 200.0 * 3

    def test_validation(self):
        with pytest.raises(ValueError, match="rate"):
            arrival_schedule(0, 5)
        with pytest.raises(ValueError, match="count"):
            arrival_schedule(10.0, -1)


# ----------------------------------------------------------------------
# percentile math
# ----------------------------------------------------------------------
class TestPercentile:
    def test_hand_computed_fixture(self):
        decades = [10, 20, 30, 40, 50, 60, 70, 80, 90, 100]
        # nearest rank: index ceil(p/100 * 10), 1-based
        assert percentile(decades, 50) == 50
        assert percentile(decades, 90) == 90
        assert percentile(decades, 91) == 100
        assert percentile(decades, 95) == 100
        assert percentile(decades, 99) == 100
        assert percentile(decades, 0) == 10
        assert percentile(decades, 100) == 100

    def test_unsorted_input_and_ties(self):
        assert percentile([3, 1, 4, 1, 5], 50) == 3
        assert percentile([3, 1, 4, 1, 5], 25) == 1
        assert percentile([3, 1, 4, 1, 5], 95) == 5
        assert percentile([7], 50) == 7

    def test_validation(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50)
        with pytest.raises(ValueError, match="0, 100"):
            percentile([1], 101)


# ----------------------------------------------------------------------
# run_load against a stub target (no sockets, no processes)
# ----------------------------------------------------------------------
class _StubTarget:
    """Answers instantly; flow queries with s == 666 blow up."""

    instances = 0

    def __init__(self):
        type(self).instances += 1
        self.closed = False

    def query(self, q):
        if isinstance(q, FlowQuery) and q.s == 666:
            raise ServiceError("stub refuses s=666")
        return q

    def close(self):
        self.closed = True


class TestRunLoadStub:
    def test_per_kind_accounting_and_rows(self):
        queries = ([DistanceQuery("g", 0, 1)] * 6
                   + [FlowQuery("g", 0, 9)] * 3
                   + [FlowQuery("g", 666, 9)] * 2
                   + [GirthQuery("g")])
        targets = []

        def make_target(i):
            t = _StubTarget()
            targets.append(t)
            return t

        report = run_load(queries, make_target, rate=2000.0,
                          connections=3, seed=5)
        assert report.connections == 3 and len(targets) == 3
        assert all(t.closed for t in targets)

        rows = report.rows()
        assert rows["distance"]["count"] == 6
        assert rows["distance"]["errors"] == {}
        assert rows["flow"]["count"] == 5
        assert rows["flow"]["ok"] == 3
        assert rows["flow"]["errors"] == {"ServiceError": 2}
        assert rows["girth"]["count"] == 1
        assert rows["total"]["count"] == 12
        assert rows["total"]["ok"] == 10
        assert rows["total"]["connections"] == 3
        for key in ("p50_s", "p95_s", "p99_s", "mean_s",
                    "throughput_qps"):
            assert rows["total"][key] >= 0
        # percentiles are monotone by construction
        assert rows["total"]["p50_s"] <= rows["total"]["p95_s"] \
            <= rows["total"]["p99_s"]
        assert report.error_count == 2
        assert report.p99() == rows["total"]["p99_s"]

    def test_on_result_sees_every_success(self):
        seen = []
        queries = [DistanceQuery("g", 0, i) for i in range(8)]
        report = run_load(queries, lambda i: _StubTarget(),
                          rate=5000.0, connections=2,
                          on_result=seen.append)
        assert sorted(q.g for q in seen) == list(range(8))
        assert report.error_count == 0


# ----------------------------------------------------------------------
# error-frame counting under worker death (live server)
# ----------------------------------------------------------------------
def test_worker_death_mid_run_counts_error_frames():
    g = randomize_weights(grid(4, 5), seed=3,
                          directed_capacities=True)
    pool = WarmWorkerPool(workers=2)
    pool.register("g", g)
    pool.prewarm(kinds=("distance",))
    pool.start()
    server = QueryServer(pool).start_background()
    host, port = server.address
    nf = g.num_faces()
    queries = [DistanceQuery("g", i % nf, (i * 5) % nf)
               for i in range(40)]

    first_success = threading.Event()

    def killer():
        # wait for the run to be demonstrably under way, then kill
        # every worker: all later arrivals must come back as typed
        # ServiceError frames, which the load generator counts
        # instead of dying on
        first_success.wait(timeout=60)
        while True:
            try:
                kill_pool_worker(pool)
            except RuntimeError:
                break

    kt = threading.Thread(target=killer, daemon=True)
    kt.start()
    try:
        report = run_load(
            queries,
            lambda i: ServiceClient(host, port, timeout=120).connect(),
            rate=80.0, connections=2, seed=9,
            on_result=lambda env: first_success.set())
        kt.join(timeout=60)
    finally:
        server.shutdown()
        pool.close()

    rows = report.rows()["distance"]
    assert rows["count"] == len(queries)           # nothing dropped
    assert rows["ok"] >= 1                         # ran before the kill
    assert rows["errors"].get("ServiceError", 0) >= 1
    assert rows["ok"] + sum(rows["errors"].values()) == len(queries)
    # every error is the pool's typed worker-death ServiceError, not a
    # protocol failure or a crash of the generator itself
    assert set(rows["errors"]) == {"ServiceError"}
