"""Tests for repro.obs.health + the pool watchdog (DESIGN.md §15):
windowed-histogram semantics and the bit-exact merge-of-deltas
contract (hypothesis), SLO policy evaluation, flight-recorder tail
sampling, the heartbeat/watchdog liveness pipeline end to end over a
live server (kill -> breach, stall -> stalled), the background audit
scheduler, and the health/exemplars CLI.  Everything here is
stdlib-only and runs under ``REPRO_ENGINE_NO_NUMPY=1``."""

import json
import math
import os
import signal
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.errors import ProtocolError, ServiceError
from repro.obs.health import ERROR_PREFIX, LATENCY_PREFIX
from repro.obs.metrics import (
    MetricsRegistry,
    WindowedHistogram,
    snapshot_delta,
)
from repro.planar.generators import grid, randomize_weights
from repro.server import QueryServer, ServiceClient, WarmWorkerPool
from repro.service import DistanceQuery, FlowQuery
from test_server import kill_pool_worker, wait_for_reap


def make_grid(rows=4, cols=5, seed=3):
    return randomize_weights(grid(rows, cols), seed=seed,
                             directed_capacities=True)


@pytest.fixture(autouse=True)
def clean_obs(request):
    """Every test starts and ends with the layer off and empty —
    except under the class-scoped ``served_health`` fixture, which
    owns the enable/reset bracket for its whole class."""
    if "served_health" in request.fixturenames:
        yield
        return
    obs.reset()
    yield
    obs.reset()


def wait_for(predicate, timeout=20.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# ----------------------------------------------------------------------
# windowed histograms
# ----------------------------------------------------------------------
class TestWindowedHistogram:
    def test_window_aggregates_recent_slots_only(self):
        h = WindowedHistogram(slot_seconds=1.0, slots=60)
        h.observe(0.001, now=10.0)
        h.observe(0.002, now=10.5)   # same slot
        h.observe(0.5, now=40.0)
        w = h.window(seconds=60.0, now=40.0)
        assert w["count"] == 3
        assert w["sum"] == pytest.approx(0.503)
        # a 5s read window at t=40 sees only the t=40 slot
        w = h.window(seconds=5.0, now=40.0)
        assert w["count"] == 1 and w["min"] == 0.5

    def test_expiry_is_deterministic_in_the_data(self):
        """Two histograms fed the same observations in different
        orders prune identically — expiry keys off the highest slot
        ever seen, never the wall clock."""
        a = WindowedHistogram(slot_seconds=1.0, slots=60)
        b = WindowedHistogram(slot_seconds=1.0, slots=60)
        a.observe(1.0, now=0.0)
        a.observe(2.0, now=500.0)
        b.observe(2.0, now=500.0)
        b.observe(1.0, now=0.0)
        assert a.to_dict() == b.to_dict()
        assert list(a.to_dict()["data"]) == ["500"]

    def test_quantile_bucket_resolution(self):
        h = WindowedHistogram(slot_seconds=1.0, slots=60)
        assert h.quantile(0.5) is None
        for v in (0.0001, 0.001, 0.01, 0.1):
            h.observe(v, now=1.0)
        q50 = h.quantile(0.5, now=1.0)
        q99 = h.quantile(0.99, now=1.0)
        assert q50 <= q99
        assert q99 >= 0.1

    def test_merge_rejects_geometry_mismatch(self):
        h = WindowedHistogram(slot_seconds=1.0, slots=60)
        other = WindowedHistogram(slot_seconds=2.0, slots=60)
        other.observe(1.0, now=0.0)
        with pytest.raises(ValueError):
            h.merge_dict(other.to_dict())

    def test_registry_kind_collision(self):
        reg = MetricsRegistry()
        reg.observe_windowed("m", 1.0, now=0.0)
        with pytest.raises(ValueError):
            reg.histogram("m")

    # -- the cross-process contract ------------------------------------
    @given(ops=st.lists(
        st.one_of(
            st.tuples(st.just("obs"), st.integers(0, 1),
                      st.integers(0, 100), st.integers(0, 2 ** 20)),
            st.tuples(st.just("ship"), st.integers(0, 1))),
        min_size=1, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_merge_of_deltas_is_bit_exact(self, ops):
        """The windowed shipping protocol: two workers observing on a
        shared clock, shipping deltas at arbitrary points, reproduce
        the all-local aggregation *bit-exactly* (dict equality, no
        approx).  Values are multiples of 2^-20 so float sums are
        exactly representable at every partial step; counts and
        min/max are exact unconditionally."""
        name = "health.query_seconds.Q"
        local = MetricsRegistry()
        workers = [MetricsRegistry(), MetricsRegistry()]
        master = MetricsRegistry()
        baselines = [{}, {}]

        def ship(w):
            snap = workers[w].snapshot()
            master.merge(snapshot_delta(snap, baselines[w]))
            baselines[w] = snap

        for op in ops:
            if op[0] == "obs":
                _, w, t, k = op
                v = k * 2.0 ** -20
                kwargs = dict(now=float(t), slots=200)
                workers[w].observe_windowed(name, v, **kwargs)
                local.observe_windowed(name, v, **kwargs)
            else:
                ship(op[1])
        ship(0)
        ship(1)

        mine, ref = master.get(name), local.get(name)
        if ref is None:
            assert mine is None
        else:
            assert mine.to_dict() == ref.to_dict()
            assert mine.window(200.0, now=100.0) \
                == ref.window(200.0, now=100.0)


# ----------------------------------------------------------------------
# SLO policies
# ----------------------------------------------------------------------
class TestSloPolicy:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            obs.SloPolicy(kind="Q", latency_quantile=1.5)
        with pytest.raises(ValueError):
            obs.SloPolicy(kind="Q", latency_budget_s=0)
        with pytest.raises(ValueError):
            obs.SloPolicy(kind="Q", error_budget=0.0)

    def test_empty_window_is_ok(self):
        reg = MetricsRegistry()
        r = obs.evaluate_slo(obs.SloPolicy(kind="Q"), reg)
        assert r["status"] == "ok"
        assert r["count"] == 0 and r["burn_rate"] == 0.0

    def test_latency_breach_and_burn_rate(self):
        reg = MetricsRegistry()
        p = obs.SloPolicy(kind="Q", latency_budget_s=0.01,
                          latency_quantile=0.5)
        for _ in range(10):  # every query over budget: burn = 1/0.5
            reg.observe_windowed(LATENCY_PREFIX + "Q", 0.2, now=1.0)
        r = obs.evaluate_slo(p, reg, now=1.0)
        assert r["status"] == "breach"
        assert r["burn_rate"] == pytest.approx(2.0)
        assert r["latency"]["frac_over_budget"] == 1.0

    def test_error_breach(self):
        reg = MetricsRegistry()
        p = obs.SloPolicy(kind="Q", error_budget=0.1)
        for _ in range(9):
            reg.observe_windowed(LATENCY_PREFIX + "Q", 0.001, now=1.0)
        for _ in range(2):  # 2/11 errors > 10% budget
            reg.observe_windowed(ERROR_PREFIX + "Q", 0.001, now=1.0)
        r = obs.evaluate_slo(p, reg, now=1.0)
        assert r["status"] == "breach"
        assert r["error_count"] == 2 and r["count"] == 11

    def test_warn_between_warn_fraction_and_budget(self):
        reg = MetricsRegistry()
        p = obs.SloPolicy(kind="Q", error_budget=0.5,
                          warn_fraction=0.5)
        for _ in range(2):
            reg.observe_windowed(LATENCY_PREFIX + "Q", 0.001, now=1.0)
        reg.observe_windowed(ERROR_PREFIX + "Q", 0.001, now=1.0)
        r = obs.evaluate_slo(p, reg, now=1.0)  # rate 1/3, burn 2/3
        assert r["status"] == "warn"

    def test_wildcard_covers_discovered_kinds(self):
        reg = MetricsRegistry()
        reg.observe_windowed(LATENCY_PREFIX + "A", 0.001, now=1.0)
        reg.observe_windowed(LATENCY_PREFIX + "B", 50.0, now=1.0)
        policies = [obs.SloPolicy(kind="A"),
                    obs.SloPolicy(kind="*", latency_budget_s=1.0,
                                  latency_quantile=0.5)]
        report = obs.evaluate_slos(policies, reg, now=1.0)
        kinds = {r["kind"]: r["status"] for r in report["slos"]}
        assert kinds["A"] == "ok"
        assert kinds["B"] == "breach"   # wildcard applied to B only
        assert report["status"] == "breach"

    def test_worst_status(self):
        assert obs.worst_status([]) == "ok"
        assert obs.worst_status(["ok", "warn"]) == "warn"
        assert obs.worst_status(["warn", "breach", "ok"]) == "breach"


# ----------------------------------------------------------------------
# flight recorder
# ----------------------------------------------------------------------
def _root(trace, seconds, start=1.0, error=None, kind="FlowQuery"):
    tags = {"kind": kind}
    if error:
        tags["error"] = error
    return {"trace": trace, "name": "query.execute", "start": start,
            "seconds": seconds, "tags": tags}


class TestFlightRecorder:
    def test_slowest_k_per_window(self):
        rec = obs.FlightRecorder(slowest_k=2, window_seconds=3600.0)
        for trace, secs in (("a", 0.5), ("b", 0.1), ("c", 0.3)):
            rec.record_span(_root(trace, secs))
        kept = {e["trace"] for e in rec.exemplars()}
        assert kept == {"a", "c"}          # b was the fastest, evicted
        assert rec.dropped == 1

    def test_errors_always_retained(self):
        rec = obs.FlightRecorder(slowest_k=1, window_seconds=3600.0)
        rec.record_span(_root("slow", 9.0))
        rec.record_span(_root("err", 0.001, error="ValueError"))
        reasons = {e["trace"]: e["reason"] for e in rec.exemplars()}
        assert reasons == {"slow": "slow", "err": "error"}
        assert rec.exemplars(reason="error")[0]["trace"] == "err"

    def test_child_spans_buffer_until_root_then_append(self):
        rec = obs.FlightRecorder(slowest_k=1, window_seconds=3600.0)
        child = {"trace": "t", "name": "labels.query", "start": 1.0,
                 "seconds": 0.1, "tags": {}}
        rec.record_span(child)
        assert len(rec) == 0               # no root yet: pending
        rec.record_span(_root("t", 0.2))
        late = {"trace": "t", "name": "server.query", "start": 0.9,
                "seconds": 0.3, "tags": {}}
        rec.record_span(late)              # post-decision completion
        [entry] = rec.exemplars()
        assert [s["name"] for s in entry["spans"]] \
            == ["labels.query", "query.execute", "server.query"]

    def test_pending_and_capacity_bounds(self):
        rec = obs.FlightRecorder(slowest_k=8, window_seconds=3600.0,
                                 capacity=2, max_pending=4)
        for i in range(10):                # rootless noise is bounded
            rec.record_span({"trace": f"p{i}", "name": "x",
                             "start": 1.0, "seconds": 0.1, "tags": {}})
        assert rec.dump()["pending"] <= 4
        rec.record_span(_root("err", 0.1, error="E"))
        for trace in ("s1", "s2"):
            rec.record_span(_root(trace, 0.5))
        assert len(rec) == 2               # capacity
        kept = {e["trace"] for e in rec.exemplars()}
        assert "err" in kept               # non-error evicted first

    def test_dump_is_json_safe_and_clear_resets(self):
        rec = obs.FlightRecorder(slowest_k=1, window_seconds=3600.0)
        rec.record_span(_root("t", 0.2))
        json.dumps(rec.dump())
        rec.clear()
        assert len(rec) == 0 and rec.dump()["dropped"] == 0


# ----------------------------------------------------------------------
# watchdog + health verb, end to end
# ----------------------------------------------------------------------
@pytest.fixture(scope="class")
def served_health():
    """A forked 2-worker pool with fast heartbeats behind a live TCP
    server, observability on — the watchdog acceptance harness."""
    obs.reset()
    obs.enable()
    g = make_grid()
    pool = WarmWorkerPool(workers=2, heartbeat_interval=0.1,
                          stall_after=1.5)
    pool.register("g", g)
    pool.prewarm(kinds=("flow", "distance"))
    pool.start()
    server = QueryServer(pool).start_background()
    host, port = server.address
    client = ServiceClient(host, port, timeout=60)
    yield {"g": g, "pool": pool, "server": server, "client": client,
           "host": host, "port": port}
    client.close()
    server.shutdown()
    pool.close()
    obs.reset()


class TestWatchdogEndToEnd:
    def test_ready_and_ok_under_load(self, served_health):
        client = served_health["client"]
        for i in range(8):
            client.query(DistanceQuery("g", 0, 1 + i % 5))
        client.query(FlowQuery("g", 0, 5))
        report = client.health()
        assert report["state"] == "ready"
        assert report["status"] == "ok"
        assert report["workers"]["alive"] == 2
        assert report["uptime_s"] > 0
        kinds = {s["kind"] for s in report["slos"]["slos"]}
        assert "DistanceQuery" in kinds
        assert all(s["status"] == "ok"
                   for s in report["slos"]["slos"])

    def test_heartbeats_advance_per_worker(self, served_health):
        report = served_health["client"].health()
        for row in report["workers"]["detail"]:
            assert row["alive"] and not row["stalled"]
            assert 0.0 <= row["heartbeat_age_s"] < 1.5

    def test_stats_gains_uptime_and_heartbeat_age(self, served_health):
        stats = served_health["client"].stats()
        assert stats["uptime_s"] > 0
        workers = [row for row in stats["occupancy"]
                   if row["worker"] != "in-process"]
        assert len(workers) == 2
        for row in workers:
            assert row["heartbeat_age_s"] >= 0.0

    def test_health_prometheus_format(self, served_health):
        text = served_health["client"].health(format="prometheus")
        assert "# TYPE repro_health_status gauge" in text
        assert "repro_health_workers_alive 2" in text
        assert 'repro_slo_status{kind="DistanceQuery"}' in text

    def test_health_rejects_unknown_format(self, served_health):
        with pytest.raises(ProtocolError):
            served_health["client"].health(format="bogus")

    def test_exemplars_verb_dumps_stitched_trees(self, served_health):
        client = served_health["client"]
        assert wait_for(lambda: client.exemplars()["retained"] > 0)
        dump = client.exemplars()
        assert dump["recording"] is True
        for entry in dump["exemplars"]:
            names = {s["name"] for s in entry["spans"]}
            assert "query.execute" in names
        json.dumps(dump)
        assert len(client.exemplars(limit=1)["exemplars"]) == 1
        with pytest.raises(ProtocolError):
            client.exemplars(limit=0)

    def test_cli_health_and_exemplars(self, served_health, capsys):
        from repro.obs.__main__ import main as obs_main

        addr = "{host}:{port}".format(**served_health)
        assert obs_main(["health", addr]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["state"] == "ready"
        assert obs_main(["health", addr, "--format",
                         "prometheus"]) == 0
        assert "repro_health_status" in capsys.readouterr().out
        assert obs_main(["exemplars", addr, "--trees"]) == 0
        assert "query.execute" in capsys.readouterr().out

    def test_errors_surface_in_slo_and_recorder(self, served_health):
        client = served_health["client"]
        with pytest.raises(ServiceError):
            client.query(DistanceQuery("no-such-graph", 0, 1))
        # the failed query breaches DistanceQuery's 5% default error
        # budget and its trace is retained by reason
        def breached():
            slos = client.health()["slos"]["slos"]
            return any(s["kind"] == "DistanceQuery"
                       and s["status"] == "breach"
                       and s["error_count"] >= 1 for s in slos)

        assert wait_for(breached)
        assert wait_for(lambda: any(
            e["reason"] == "error"
            for e in client.exemplars()["exemplars"]))

    def test_zz_kill_worker_flips_health_to_breach(self, served_health):
        """The acceptance path: SIGKILL one worker under load; the
        watchdog notices, health degrades to breach, survivors keep
        serving."""
        pool, client = served_health["pool"], served_health["client"]
        wid = kill_pool_worker(pool)
        wait_for_reap(pool, wid)

        def breached():
            r = client.health()
            return r["state"] == "degraded" and r["status"] == "breach"

        assert wait_for(breached)
        report = client.health()
        assert report["workers"]["alive"] == 1
        dead = next(row for row in report["workers"]["detail"]
                    if row["worker"] == wid)
        assert not dead["alive"]
        r = client.query(DistanceQuery("g", 0, 3))
        assert r.result is not None        # survivor still serves
        text = client.health(format="prometheus")
        assert "repro_health_status 2" in text
        assert "repro_health_ready 0" in text


@pytest.mark.skipif(not hasattr(signal, "SIGSTOP"),
                    reason="needs SIGSTOP/SIGCONT")
def test_stalled_worker_detected_and_recovers():
    """A live-but-silent worker (SIGSTOP) goes ``stalled`` once its
    heartbeat age passes ``stall_after``, degrading health without
    declaring it dead; SIGCONT recovers it."""
    obs.enable()
    pool = WarmWorkerPool(workers=2, heartbeat_interval=0.05,
                          stall_after=0.5)
    pool.register("g", make_grid())
    pool.prewarm(kinds=("distance",))
    with pool:
        wid, proc = next(iter(pool._procs.items()))
        os.kill(proc.pid, signal.SIGSTOP)
        try:
            def stalled():
                r = pool.health()
                row = next(d for d in r["workers"]["detail"]
                           if d["worker"] == wid)
                return (row["stalled"] and r["state"] == "degraded"
                        and r["status"] == "breach")

            assert wait_for(stalled)
        finally:
            os.kill(proc.pid, signal.SIGCONT)

        def recovered():
            r = pool.health()
            return r["state"] == "ready" and r["status"] == "ok"

        assert wait_for(recovered)


def test_health_state_machine_lifecycle():
    pool = WarmWorkerPool(workers=0)
    pool.register("g", make_grid())
    r = pool.health()
    assert r["state"] == "starting" and r["status"] == "warn"
    pool.start()
    assert pool.health()["state"] == "ready"
    pool.close()
    r = pool.health()
    assert r["state"] == "closed" and r["status"] == "breach"


def test_background_audit_scheduler_runs_on_idle():
    """Opt-in audit ticks: an idle started pool audits its graphs and
    surfaces the verdict through ``health()``."""
    pool = WarmWorkerPool(workers=0, audit_interval=0.05)
    pool.register("g", make_grid())
    pool.prewarm(kinds=("distance",))
    pool.start()
    try:
        assert wait_for(lambda: pool.health()["audit"] is not None,
                        timeout=15.0)
        audit = pool.health()["audit"]
        assert audit["ok"] is True
        assert audit["graphs"] == {"g": "ok"}
        assert pool.health()["status"] == "ok"
    finally:
        pool.close()


def test_enable_background_audit_after_start():
    pool = WarmWorkerPool(workers=0)
    pool.register("g", make_grid())
    pool.prewarm(kinds=("distance",))
    pool.start()
    try:
        assert pool.health()["audit"] is None
        pool.enable_background_audit(0.05)
        assert wait_for(lambda: pool.health()["audit"] is not None,
                        timeout=15.0)
    finally:
        pool.close()


def test_pool_constructor_validation():
    with pytest.raises(ServiceError):
        WarmWorkerPool(workers=1, heartbeat_interval=0.0)
    with pytest.raises(ServiceError):
        WarmWorkerPool(workers=1, stall_after=0.0)
    with pytest.raises(ServiceError):
        WarmWorkerPool(workers=1, audit_interval=0.0)
    with pytest.raises(ServiceError):
        WarmWorkerPool(workers=0).enable_background_audit(0)
