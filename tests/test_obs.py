"""Tests for repro.obs (DESIGN.md §13): metrics registry semantics,
span nesting, Prometheus rendering, the disabled-path no-op contract,
and end-to-end trace stitching across client → server thread → forked
worker — including the error-frame path and the no-numpy build."""

import json
import os
import subprocess
import sys
import time

import pytest

from repro import obs
from repro.errors import ProtocolError, ServiceError
from repro.planar.generators import grid, randomize_weights
from repro.server import QueryServer, ServiceClient, WarmWorkerPool
from repro.service import (
    DistanceQuery,
    FlowQuery,
    GirthQuery,
    GraphCatalog,
    execute_query,
)

SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")


def make_grid(rows=4, cols=5, seed=3):
    return randomize_weights(grid(rows, cols), seed=seed,
                             directed_capacities=True)


@pytest.fixture(autouse=True)
def clean_obs(request):
    """Every test starts and ends with the layer off and empty —
    except under the class-scoped ``served_obs`` fixture, which owns
    the enable/reset bracket for its whole class."""
    if "served_obs" in request.fixturenames:
        yield
        return
    obs.reset()
    yield
    obs.reset()


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_gauge_histogram_snapshot(self):
        reg = obs.MetricsRegistry()
        reg.inc("served")
        reg.inc("served", 4)
        reg.set_gauge("alive", 3)
        for v in (0.001, 0.002, 0.5):
            reg.observe("lat", v)
        snap = reg.snapshot()
        assert snap["served"]["value"] == 5
        assert snap["alive"]["value"] == 3
        h = snap["lat"]
        assert h["count"] == 3
        assert h["sum"] == pytest.approx(0.503)
        assert sum(h["counts"]) == 3
        # snapshots are JSON-safe by contract
        json.dumps(snap)

    def test_histogram_quantile_monotone(self):
        h = obs.Histogram()
        for v in (0.0001, 0.001, 0.01, 0.1, 1.0):
            h.observe(v)
        assert h.quantile(0.0) <= h.quantile(0.5) <= h.quantile(1.0)

    def test_merge_adds_counters_and_histograms(self):
        a = obs.MetricsRegistry()
        b = obs.MetricsRegistry()
        a.inc("n", 2)
        b.inc("n", 3)
        a.observe("lat", 0.25)
        b.observe("lat", 0.25)
        b.set_gauge("g", 7)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["n"]["value"] == 5
        assert snap["lat"]["count"] == 2
        assert snap["g"]["value"] == 7  # gauges replace

    def test_snapshot_delta_is_exactly_whats_new(self):
        reg = obs.MetricsRegistry()
        reg.inc("n", 2)
        reg.observe("lat", 0.5)
        base = reg.snapshot()
        reg.inc("n", 3)
        reg.observe("lat", 0.125)
        delta = obs.snapshot_delta(reg.snapshot(), base)
        assert delta["n"]["value"] == 3
        assert delta["lat"]["count"] == 1
        # folding the delta into a copy of the baseline reproduces now
        merged = obs.MetricsRegistry()
        merged.merge(base)
        merged.merge(delta)
        assert merged.snapshot() == reg.snapshot()

    def test_empty_delta_is_empty(self):
        reg = obs.MetricsRegistry()
        reg.inc("n")
        base = reg.snapshot()
        assert obs.snapshot_delta(reg.snapshot(), base) == {}


# ----------------------------------------------------------------------
# prometheus rendering
# ----------------------------------------------------------------------
class TestPrometheus:
    def test_render_counter_gauge_histogram(self):
        reg = obs.MetricsRegistry()
        reg.inc("wire.frames_encoded", 7)
        reg.set_gauge("pool.workers_alive", 2)
        reg.observe("wire.encode_seconds", 0.001)
        text = obs.render_prometheus(reg.snapshot())
        assert "repro_wire_frames_encoded_total 7" in text
        assert "repro_pool_workers_alive 2" in text
        assert 'le="+Inf"' in text
        assert "repro_wire_encode_seconds_count 1" in text
        # cumulative bucket counts end at the total count
        bucket_lines = [ln for ln in text.splitlines()
                        if ln.startswith("repro_wire_encode_seconds_"
                                         "bucket")]
        assert bucket_lines[-1].endswith(" 1")


# ----------------------------------------------------------------------
# spans
# ----------------------------------------------------------------------
class TestSpans:
    def test_disabled_span_is_the_shared_noop(self):
        assert obs.enabled() is False
        assert obs.span("anything", x=1) is obs.NOOP_SPAN
        with obs.span("anything") as sp:
            sp.tag(ignored=True)
        # nothing was recorded anywhere
        assert obs.registry().snapshot() == {}

    def test_nesting_links_parent_and_trace(self):
        ring = obs.RingBufferSink()
        obs.enable(ring)
        with obs.span("outer") as outer:
            with obs.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        spans = ring.spans()
        assert [s["name"] for s in spans] == ["inner", "outer"]
        assert spans[0]["parent"] == spans[1]["span"]
        assert spans[1]["parent"] is None
        assert all(s["seconds"] >= 0 for s in spans)

    def test_exception_tags_error_class(self):
        ring = obs.RingBufferSink()
        obs.enable(ring)
        with pytest.raises(ValueError):
            with obs.span("boom"):
                raise ValueError("no")
        [span] = ring.spans()
        assert span["tags"]["error"] == "ValueError"

    def test_activate_trace_adopts_wire_context(self):
        ring = obs.RingBufferSink()
        obs.enable(ring)
        token = obs.activate_trace(["t-1", "parent-9"])
        try:
            with obs.span("child"):
                pass
        finally:
            obs.deactivate_trace(token)
        [span] = ring.spans()
        assert span["trace"] == "t-1"
        assert span["parent"] == "parent-9"
        # malformed contexts activate nothing
        assert obs.activate_trace(None) is None
        assert obs.activate_trace(["just-one"]) is None

    def test_execute_query_mints_span_and_counters(self):
        ring = obs.RingBufferSink()
        obs.enable(ring)
        catalog = GraphCatalog()
        catalog.register("g", make_grid(3, 3))
        q = DistanceQuery("g", 0, 1)
        execute_query(catalog, q)
        execute_query(catalog, q)
        roots = [s for s in ring.spans(name="query.execute")
                 if s["parent"] is None]
        assert len(roots) == 2
        assert roots[0]["trace"] != roots[1]["trace"]
        assert roots[0]["tags"]["kind"] == "DistanceQuery"
        assert roots[0]["tags"]["warm"] is False
        assert roots[1]["tags"]["warm"] is True
        snap = obs.registry().snapshot()
        assert snap["service.result.miss"]["value"] == 1
        assert snap["service.result.hit"]["value"] == 1
        assert snap["service.query_seconds.DistanceQuery"]["count"] == 2

    def test_ndjson_sink_round_trips(self, tmp_path):
        path = tmp_path / "obs.ndjson"
        sink = obs.NdjsonFileSink(path)
        obs.enable(sink)
        with obs.span("one", k=1):
            pass
        sink.close()
        [rec] = obs.read_ndjson(path)
        assert rec["type"] == "span"
        assert rec["name"] == "one"
        assert rec["tags"] == {"k": 1}


# ----------------------------------------------------------------------
# worker shipping protocol
# ----------------------------------------------------------------------
class TestShipping:
    def test_ship_delta_buffers_spans_and_metric_deltas(self):
        obs.enable()
        obs.inc("pre", 5)
        obs.configure_shipping(True)
        with obs.span("worker.site"):
            obs.inc("served")
        payload = obs.ship_delta()
        assert [s["name"] for s in payload["spans"]] == ["worker.site"]
        assert payload["metrics"] == {"served": {"type": "counter",
                                                 "value": 1}}
        # drained: a second call with no new activity ships nothing
        assert obs.ship_delta() is None

    def test_ingest_routes_spans_to_sinks_and_merges_metrics(self):
        ring = obs.RingBufferSink()
        obs.enable(ring)
        obs.inc("served", 1)
        obs.ingest({"spans": [{"trace": "t", "span": "s",
                               "parent": None, "name": "shipped",
                               "pid": 1, "start": 0.0,
                               "seconds": 0.1}],
                    "metrics": {"served": {"type": "counter",
                                           "value": 2}}})
        assert [s["name"] for s in ring.spans()] == ["shipped"]
        assert obs.registry().snapshot()["served"]["value"] == 3
        obs.ingest(None)  # tolerated


# ----------------------------------------------------------------------
# end-to-end: client → server thread → forked worker
# ----------------------------------------------------------------------
@pytest.fixture(scope="class")
def served_obs():
    """A forked 2-worker pool behind a live TCP server, with the
    observability layer enabled *before* the fork (workers inherit the
    switch and run in shipping mode)."""
    obs.reset()
    ring = obs.RingBufferSink()
    obs.enable(ring)
    g = make_grid()
    pool = WarmWorkerPool(workers=2)
    pool.register("g", g)
    pool.prewarm(kinds=("flow", "distance"))
    pool.start()
    server = QueryServer(pool).start_background()
    host, port = server.address
    client = ServiceClient(host, port, timeout=60)
    yield {"g": g, "ring": ring, "pool": pool, "server": server,
           "client": client, "host": host, "port": port}
    client.close()
    server.shutdown()
    pool.close()
    obs.reset()


def _wait_for_trace(ring, trace_id, name, tries=100):
    """Worker span deltas ride the result queue and are ingested by the
    collector thread just after the future resolves — poll briefly."""
    for _ in range(tries):
        if any(s["name"] == name for s in ring.spans(trace=trace_id)):
            return ring.spans(trace=trace_id)
        time.sleep(0.05)
    return ring.spans(trace=trace_id)


class TestEndToEndStitching:
    def test_one_query_yields_one_stitched_cross_process_tree(
            self, served_obs):
        ring = served_obs["ring"]
        served_obs["client"].query(FlowQuery("g", 0, 5))
        trace = next(s["trace"] for s in reversed(ring.spans())
                     if s["name"] == "client.query")
        spans = _wait_for_trace(ring, trace, "query.execute")
        names = {s["name"] for s in spans}
        assert {"client.query", "server.query",
                "query.execute"} <= names
        # one trace id everywhere, every parent resolves in-trace
        ids = {s["span"] for s in spans}
        roots = [s for s in spans if s["parent"] is None]
        assert [s["name"] for s in roots] == ["client.query"]
        assert all(s["parent"] in ids for s in spans
                   if s["parent"] is not None)
        # ...and the tree really crosses the fork boundary
        assert len({s["pid"] for s in spans}) >= 2
        by_id = {s["span"]: s for s in spans}
        execute = next(s for s in spans if s["name"] == "query.execute")
        assert by_id[execute["parent"]]["name"] == "server.query"

    def test_error_frame_path_still_traces(self, served_obs):
        ring = served_obs["ring"]
        report = served_obs["client"].run(
            [DistanceQuery("g", 0, 1), FlowQuery("missing", 0, 1)],
            on_error="return")
        assert report.results[0].error is None
        assert isinstance(report.results[1].error, ServiceError)
        trace = next(s["trace"] for s in reversed(ring.spans())
                     if s["name"] == "client.batch")
        spans = _wait_for_trace(ring, trace, "query.execute")
        names = {s["name"] for s in spans}
        assert {"client.batch", "server.batch",
                "query.execute"} <= names
        ids = {s["span"] for s in spans}
        assert all(s["parent"] in ids for s in spans
                   if s["parent"] is not None)

    def test_stats_reports_worker_pids_liveness_and_metrics(
            self, served_obs):
        served_obs["client"].query(DistanceQuery("g", 0, 2))
        stats = served_obs["client"].stats()
        rows = stats["occupancy"]
        assert len(rows) == 2
        assert all(row["alive"] is True for row in rows)
        pids = {row["pid"] for row in rows}
        assert len(pids) == 2 and os.getpid() not in pids
        assert "metrics" in stats
        assert "pool.completed.DistanceQuery" in stats["metrics"]

    def test_metrics_verb_both_formats(self, served_obs):
        client = served_obs["client"]
        client.query(DistanceQuery("g", 1, 2))
        served_obs["pool"].drain()
        snap = client.metrics()
        assert snap["pool.completed.DistanceQuery"]["value"] >= 1
        # worker-side sites arrive via shipped deltas
        deadline = time.monotonic() + 10
        while "service.query_seconds.DistanceQuery" not in snap:
            assert time.monotonic() < deadline, sorted(snap)
            time.sleep(0.05)
            snap = client.metrics()
        text = client.metrics(format="prometheus")
        assert "repro_pool_completed_DistanceQuery_total" in text
        with pytest.raises(ProtocolError):
            client.metrics(format="xml")

    def test_client_reconnect_counter_and_retried_flag(
            self, served_obs):
        client = ServiceClient(served_obs["host"], served_obs["port"],
                               timeout=60)
        assert client.reconnects == 0
        client.ping()
        # a real transport drop: shut the TCP stream down so the next
        # read sees EOF (close() alone keeps the fd alive through the
        # makefile reference)
        import socket as _socket

        client._sock.shutdown(_socket.SHUT_RDWR)
        r = client.query(DistanceQuery("g", 0, 3))
        assert client.reconnects == 1
        assert r.retried is True
        snap = obs.registry().snapshot()
        assert snap["client.reconnects"]["value"] >= 1
        # the next, un-dropped call is not marked
        r2 = client.query(DistanceQuery("g", 0, 3))
        assert r2.retried is False
        client.close()


# ----------------------------------------------------------------------
# in-process pool (workers=0) uses the ambient context directly
# ----------------------------------------------------------------------
def test_workers0_pool_spans_nest_without_shipping():
    obs.reset()
    ring = obs.RingBufferSink()
    obs.enable(ring)
    try:
        pool = WarmWorkerPool(workers=0)
        pool.register("g", make_grid(3, 3))
        pool.start()
        pool.submit(GirthQuery("g")).result()
        spans = ring.spans(name="query.execute")
        assert len(spans) == 1
        assert spans[0]["pid"] == os.getpid()
        assert pool.metrics()["pool.completed.GirthQuery"]["value"] == 1
        pool.close()
    finally:
        obs.reset()


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCLI:
    def _log(self, tmp_path):
        path = tmp_path / "obs.ndjson"
        sink = obs.NdjsonFileSink(path)
        obs.enable(sink)
        with obs.span("outer", graph="g"):
            with obs.span("inner"):
                pass
        sink.close()
        return str(path)

    def test_tail_and_summarize_and_tree(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        path = self._log(tmp_path)
        assert main(["tail", path, "--limit", "5"]) == 0
        out = capsys.readouterr().out
        assert "outer" in out and "inner" in out
        assert main(["summarize", path]) == 0
        out = capsys.readouterr().out
        assert "outer" in out and "count" in out
        assert main(["tree", path]) == 0
        out = capsys.readouterr().out
        assert "outer" in out.splitlines()[1]

    def test_scrape_prometheus(self, capsys):
        obs.enable()
        pool = WarmWorkerPool(workers=0)
        pool.register("g", make_grid(3, 3))
        pool.start()
        server = QueryServer(pool).start_background()
        host, port = server.address
        try:
            with ServiceClient(host, port, timeout=60) as c:
                c.query(DistanceQuery("g", 0, 1))
            from repro.obs.__main__ import main

            assert main(["scrape", f"{host}:{port}"]) == 0
            out = capsys.readouterr().out
            assert "repro_pool_completed_DistanceQuery_total" in out
        finally:
            server.shutdown()
            pool.close()


# ----------------------------------------------------------------------
# no-numpy build (obs is pure stdlib; the whole stitched path must work)
# ----------------------------------------------------------------------
def test_obs_stitching_under_no_numpy_subprocess():
    code = (
        "import os, time\n"
        "from repro import obs\n"
        "from repro._compat import np\n"
        "assert np is None\n"
        "from repro.planar.generators import grid, randomize_weights\n"
        "from repro.server import QueryServer, ServiceClient, "
        "WarmWorkerPool\n"
        "from repro.service import DistanceQuery\n"
        "ring = obs.RingBufferSink()\n"
        "obs.enable(ring)\n"
        "g = randomize_weights(grid(3, 4), seed=5,"
        " directed_capacities=True)\n"
        "pool = WarmWorkerPool(workers=1)\n"
        "pool.register('g', g)\n"
        "pool.prewarm(kinds=('distance',))\n"
        "pool.start()\n"
        "server = QueryServer(pool).start_background()\n"
        "host, port = server.address\n"
        "with ServiceClient(host, port, timeout=60) as c:\n"
        "    c.query(DistanceQuery('g', 0, 2))\n"
        "trace = next(s['trace'] for s in reversed(ring.spans())\n"
        "             if s['name'] == 'client.query')\n"
        "for _ in range(200):\n"
        "    spans = ring.spans(trace=trace)\n"
        "    if any(s['name'] == 'query.execute' for s in spans):\n"
        "        break\n"
        "    time.sleep(0.05)\n"
        "names = {s['name'] for s in spans}\n"
        "assert {'client.query', 'server.query', 'query.execute'}"
        " <= names, names\n"
        "assert len({s['pid'] for s in spans}) >= 2\n"
        "server.shutdown()\n"
        "pool.close()\n"
        "print('OK')\n"
    )
    env = dict(os.environ, REPRO_ENGINE_NO_NUMPY="1",
               PYTHONPATH="src" + os.pathsep
               + os.environ.get("PYTHONPATH", ""))
    proc = subprocess.run([sys.executable, "-c", code], env=env,
                          capture_output=True, text=True, timeout=300,
                          cwd=os.path.dirname(os.path.dirname(
                              os.path.abspath(__file__))))
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "OK"


def test_disabled_layer_costs_nothing_visible():
    """The disabled path returns identical results and leaves no state
    behind (the ≤2% timing gate lives in benchmarks/bench_obs.py)."""
    catalog = GraphCatalog()
    catalog.register("g", make_grid(3, 3))
    q = DistanceQuery("g", 0, 1)
    cold = execute_query(catalog, q)
    warm = execute_query(catalog, q)
    assert warm.warm is True and warm.result == cold.result
    assert obs.registry().snapshot() == {}
    assert obs.sinks() == []
