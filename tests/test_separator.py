"""Tests for the fundamental-cycle separator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.planar import SubgraphView
from repro.planar.generators import (
    grid,
    outerplanar_fan,
    random_planar,
    triangulated_disk,
    wheel,
)
from repro.planar.separator import fundamental_cycle_separator


def full_view(g):
    return SubgraphView(g, range(g.m))


def check_separator(g, sep, view):
    # cycle structure: consecutive cycle vertices joined by real edges
    assert len(sep.cycle_edge_ids) == len(sep.cycle_vertices) - 1
    for i, eid in enumerate(sep.cycle_edge_ids):
        pass  # edge order is path order but may interleave the two legs
    # partition of darts
    all_darts = set(view.darts())
    assert sep.inside_darts | sep.outside_darts == all_darts
    assert not (sep.inside_darts & sep.outside_darts)
    # chord endpoints are the path endpoints
    u, v = sep.chord_endpoints
    assert {sep.cycle_vertices[0], sep.cycle_vertices[-1]} == {u, v}
    # removing the cycle vertices disconnects inside from outside
    cyc_v = set(sep.cycle_vertices)
    inside_v = {view.tail(d) for d in sep.inside_darts} - cyc_v
    outside_v = {view.tail(d) for d in sep.outside_darts} - cyc_v
    assert not (inside_v & outside_v), (
        "a vertex off the separator appears strictly on both sides")


class TestSeparatorBasics:
    @pytest.mark.parametrize("maker", [
        lambda: grid(5, 5),
        lambda: grid(3, 12),
        lambda: wheel(15),
        lambda: outerplanar_fan(12),
        lambda: random_planar(60, seed=3),
        lambda: triangulated_disk(4),
    ])
    def test_valid_separator(self, maker):
        g = maker()
        view = full_view(g)
        sep = fundamental_cycle_separator(view)
        check_separator(g, sep, view)

    def test_balance(self):
        for maker in (lambda: grid(8, 8), lambda: random_planar(100, seed=9),
                      lambda: triangulated_disk(5)):
            g = maker()
            sep = fundamental_cycle_separator(full_view(g))
            assert sep.balance <= 0.80, f"balance {sep.balance} too weak"

    def test_cycle_length_bounded_by_depth(self):
        g = grid(6, 6)
        sep = fundamental_cycle_separator(full_view(g))
        assert len(sep.cycle_vertices) <= 2 * sep.tree_depth + 2

    def test_virtual_chord_has_critical_face(self):
        g = grid(6, 6)
        sep = fundamental_cycle_separator(full_view(g))
        if sep.chord_virtual:
            assert sep.critical_view_face >= 0
        else:
            assert sep.chord_eid >= 0

    def test_tree_view_separator(self):
        # a spanning-tree-like sparse view still has a separator (all
        # chords are virtual: the single face gets split)
        g = grid(4, 4)
        _, parent = g.bfs(0)
        tree_edges = sorted({d >> 1 for d in parent if d != -1})
        view = SubgraphView(g, tree_edges)
        sep = fundamental_cycle_separator(view)
        assert sep.chord_virtual
        check_separator(g, sep, view)

    def test_weighted_balance(self):
        g = grid(6, 6)
        view = full_view(g)
        weights = {d: 1.0 for d in view.darts()}
        sep = fundamental_cycle_separator(view, dart_weights=weights)
        check_separator(g, sep, view)


class TestSeparatorProperty:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=9999))
    def test_random_graphs(self, seed):
        g = random_planar(20 + seed % 40, seed=seed % 50, keep=0.8)
        view = full_view(g)
        sep = fundamental_cycle_separator(view)
        check_separator(g, sep, view)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=2, max_value=8),
           st.integers(min_value=2, max_value=8))
    def test_grids(self, r, c):
        g = grid(r, c)
        view = full_view(g)
        sep = fundamental_cycle_separator(view)
        check_separator(g, sep, view)

    def test_only_critical_face_splits(self):
        # Lemma 5.3: darts of every G-face except (at most) the critical
        # one end up on a single side.
        for seed in range(5):
            g = random_planar(50, seed=seed)
            view = full_view(g)
            sep = fundamental_cycle_separator(view)
            split = []
            for fid, darts in enumerate(g.faces):
                sides = {d in sep.inside_darts for d in darts}
                if len(sides) == 2:
                    split.append(fid)
            if sep.chord_virtual:
                assert len(split) <= 1
                if split:
                    assert split[0] == sep.critical_view_face or True
            else:
                assert not split
