"""End-to-end integration tests: whole pipelines on shared instances,
cross-checking algorithms against each other (max-flow == min-cut ==
dual distance; girth cycle vs its dual cut; exact vs approximate flow)."""

import pytest

from repro.baselines.centralized import (
    centralized_max_flow,
    centralized_weighted_girth,
)
from repro.congest import RoundLedger
from repro.core import (
    approx_max_st_flow,
    flow_value_networkx,
    max_st_flow,
    min_st_cut,
    validate_flow,
    verify_st_cut,
    weighted_girth,
)
from repro.labeling.primal import PrimalDistanceLabeling
from repro.planar.generators import grid, random_planar, randomize_weights


@pytest.fixture(scope="module")
def city():
    return randomize_weights(random_planar(55, seed=17), seed=17,
                             directed_capacities=True)


class TestCrossChecks:
    def test_maxflow_equals_mincut_equals_centralized(self, city):
        s, t = 0, city.n - 1
        flow = max_st_flow(city, s, t, directed=True, leaf_size=14)
        cut = min_st_cut(city, s, t, directed=True, leaf_size=14)
        cen_val, _cen_flow = centralized_max_flow(city, s, t,
                                                  directed=True)
        nx_val = flow_value_networkx(city, s, t, directed=True)
        assert flow.value == cut.value == cen_val == nx_val

    def test_exact_vs_approx_flow_bracket(self):
        g = randomize_weights(grid(5, 8), seed=23)
        s, t = 0, g.n - 1
        exact = max_st_flow(g, s, t, directed=False, leaf_size=12)
        approx = approx_max_st_flow(g, s, t, eps=0.15, seed=23)
        assert approx.value <= exact.value + 1e-9
        assert approx.value >= (1 - 0.3) * exact.value
        assert approx.cut_capacity >= exact.value - 1e-9

    def test_girth_cycle_edges_cut_the_dual(self, city):
        und = city.copy(weights=city.weights)
        res = weighted_girth(und)
        assert res.value == centralized_weighted_girth(und)
        # removing the cycle edges disconnects the two dual sides
        from repro.planar.dual import cut_edges_of_dual_cut

        recovered = cut_edges_of_dual_cut(und, res.cut_side_faces)
        assert sorted(recovered) == sorted(res.cycle_edge_ids)

    def test_primal_labels_agree_with_bfs_on_unit_weights(self):
        g = grid(5, 7)
        lab = PrimalDistanceLabeling(g, leaf_size=12)
        dist, _ = g.bfs(0)
        for v in range(g.n):
            assert lab.distance(0, v) == dist[v]

    def test_flow_respects_mincut_edges(self, city):
        s, t = 0, city.n - 1
        cut = min_st_cut(city, s, t, directed=True, leaf_size=14)
        # every cut edge is saturated by the accompanying flow
        for eid in cut.cut_edge_ids:
            assert abs(cut.flow[eid] - city.capacities[eid]) < 1e-9


class TestLedgerEndToEnd:
    def test_full_pipeline_ledger_breakdown(self):
        g = randomize_weights(grid(5, 5), seed=31,
                              directed_capacities=True)
        led = RoundLedger()
        res = max_st_flow(g, 0, g.n - 1, directed=True, leaf_size=12,
                          ledger=led)
        phases = led.by_phase()
        assert any(k.startswith("bdd/") for k in phases)
        assert any(k.startswith("labeling/") for k in phases)
        assert any(k.startswith("dual-sssp/") for k in phases)
        # labeling dominates: the Õ(D²) term
        labeling = sum(v for k, v in phases.items()
                       if k.startswith("labeling/"))
        assert labeling > phases.get("maxflow/find-path", 0)

    def test_round_shape_d_squared_not_n(self):
        # two instances, same D, different n: rounds should track D²,
        # not n (the paper's whole point)
        led1, led2 = RoundLedger(), RoundLedger()
        g1 = randomize_weights(grid(4, 8), seed=1,
                               directed_capacities=True)
        g2 = randomize_weights(grid(6, 6), seed=1,
                               directed_capacities=True)
        max_st_flow(g1, 0, g1.n - 1, directed=True, leaf_size=12,
                    ledger=led1)
        max_st_flow(g2, 0, g2.n - 1, directed=True, leaf_size=12,
                    ledger=led2)
        # both ~ D^2 * polylog; ratio bounded by a small constant
        r = led1.total() / led2.total()
        assert 0.2 <= r <= 5.0


class TestMultipleQueriesOneLabeling:
    def test_labeling_reused_for_many_sssp_queries(self):
        import random

        from repro.bdd import build_bdd
        from repro.labeling import DualDistanceLabeling, dual_sssp
        from repro.planar import DualGraph
        from repro.planar.dual import bellman_ford_arcs
        from repro.planar.graph import rev

        g = randomize_weights(grid(4, 6), seed=3)
        lengths = {d: g.weights[d >> 1] for d in g.darts()}
        bdd = build_bdd(g, leaf_size=12)
        from repro.labeling import DualDistanceLabeling

        lab = DualDistanceLabeling(bdd, lengths)
        dual = DualGraph(g)
        arcs = [(g.face_of[d], g.face_of[rev(d)], lengths[d])
                for d in g.darts()]
        rng = random.Random(3)
        for _ in range(5):
            src = rng.randrange(g.num_faces())
            res = dual_sssp(lab, source=src)
            ref = bellman_ford_arcs(dual.num_nodes, arcs, src)
            assert all(res.dist[f] == ref[f]
                       for f in range(dual.num_nodes))
