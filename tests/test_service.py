"""The serving layer: artifact cache semantics, catalog lifecycle,
query parity against the per-call entry points (both backends), batch
execution, LRU bounds, staleness under in-place mutation, and the
process-shard fan-out."""

import pytest

from repro._artifacts import (
    ArtifactCache,
    graph_fingerprint,
    shared_cache,
    topo_token,
)
from repro.aggregation.dual_sim import DualMAHost
from repro.bdd import build_bdd
from repro.core import max_st_flow, min_st_cut, weighted_girth
from repro.engine import compile_graph
from repro.errors import ServiceError
from repro.labeling import DualDistanceLabeling
from repro.planar.generators import grid, randomize_weights, wheel
from repro.service import (
    BatchReport,
    CutQuery,
    DistanceQuery,
    FlowQuery,
    GirthQuery,
    GraphCatalog,
    QueryPlanner,
    WorkspacePool,
    default_dual_lengths,
    run_batch,
    run_sharded,
)

BACKENDS = ["legacy", "engine"]


def make_grid(rows=4, cols=5, seed=3):
    return randomize_weights(grid(rows, cols), seed=seed,
                             directed_capacities=True)


# ----------------------------------------------------------------------
# ArtifactCache
# ----------------------------------------------------------------------
class TestArtifactCache:
    def test_hit_miss_counters(self):
        c = ArtifactCache()
        assert c.get(("a",)) is None
        c.put(("a",), 1)
        assert c.get(("a",)) == 1
        assert c.stats()["hits"] == 1
        assert c.stats()["misses"] == 1

    def test_get_or_build_builds_once(self):
        c = ArtifactCache()
        calls = []
        for _ in range(3):
            v = c.get_or_build(("k",), lambda: calls.append(1) or "v")
            assert v == "v"
        assert len(calls) == 1

    def test_lru_eviction_bound(self):
        c = ArtifactCache(maxsize=2)
        c.put(("a",), 1)
        c.put(("b",), 2)
        c.get(("a",))          # refresh a; b is now LRU
        c.put(("c",), 3)
        assert len(c) == 2
        assert ("a",) in c and ("c",) in c and ("b",) not in c
        assert c.evictions == 1

    def test_maxsize_validation(self):
        with pytest.raises(ValueError):
            ArtifactCache(maxsize=0)

    def test_invalidate_prefix_and_predicate(self):
        c = ArtifactCache()
        c.put(("solver", "g1", 0), 1)
        c.put(("solver", "g2", 0), 2)
        c.put(("labeling", "g1"), 3)
        assert c.invalidate(("solver",)) == 2
        assert len(c) == 1
        assert c.invalidate(lambda k: k[1] == "g1") == 1
        assert len(c) == 0

    def test_invalidate_empty_prefix_clears(self):
        c = ArtifactCache()
        c.put(("a",), 1)
        c.put(("b",), 2)
        assert c.invalidate() == 2
        assert len(c) == 0

    def test_discard(self):
        c = ArtifactCache()
        c.put(("a",), 1)
        assert c.discard(("a",)) is True
        assert c.discard(("a",)) is False


# ----------------------------------------------------------------------
# fingerprints + the migrated engine caches
# ----------------------------------------------------------------------
class TestFingerprint:
    def test_stable_and_weight_sensitive(self):
        g = make_grid()
        fp1 = graph_fingerprint(g)
        assert graph_fingerprint(g) == fp1
        g.weights[0] += 7
        fp2 = graph_fingerprint(g)
        assert fp2.topo == fp1.topo
        assert fp2.weights != fp1.weights
        assert fp2.capacities == fp1.capacities

    def test_copy_gets_fresh_topology_token(self):
        g = make_grid()
        assert topo_token(g) != topo_token(g.copy())
        assert topo_token(g) == topo_token(g)

    def test_topo_token_does_not_survive_pickling(self):
        # a pickled graph carrying a foreign process's token could
        # collide with a different graph in the receiver's caches
        # (e.g. a run_sharded worker serving two shards)
        import pickle

        g = make_grid()
        topo_token(g)
        h = pickle.loads(pickle.dumps(g))
        assert not hasattr(h, "_artifact_topo_token")
        assert topo_token(h) != topo_token(g)
        # and the round-trip still fingerprints/compiles correctly
        c = compile_graph(h)
        assert c.dual_indptr == compile_graph(g).dual_indptr


class TestMigratedEngineCaches:
    def test_compile_graph_shared_cache_identity(self):
        g = make_grid()
        c1 = compile_graph(g)
        assert compile_graph(g) is c1
        # the ad-hoc instance attribute is gone
        assert not hasattr(g, "_engine_compiled")
        # eviction just means a recompile with identical content
        shared_cache().discard(("csr", topo_token(g)))
        c2 = compile_graph(g)
        assert c2 is not c1
        assert c2.dual_indptr == c1.dual_indptr
        assert c2.dual_arc_dart == c1.dual_arc_dart

    def test_cycle_oracle_shared_and_weight_keyed(self):
        g = make_grid()
        h1 = DualMAHost(g, backend="engine")
        h2 = DualMAHost(g, backend="engine")
        assert h1.engine_cycle_oracle() is h2.engine_cycle_oracle()
        assert not hasattr(g, "_engine_cycle_cache")
        # in-place weight mutation must produce a fresh oracle (the
        # stale-cache hazard the fingerprint keying fixes)
        before = weighted_girth(g, backend="engine").value
        g.weights[0] += 100
        h3 = DualMAHost(g, backend="engine")
        assert h3.engine_cycle_oracle() is not h1.engine_cycle_oracle()
        after_engine = weighted_girth(g, backend="engine")
        after_legacy = weighted_girth(g, backend="legacy")
        assert after_engine.value == after_legacy.value
        assert after_engine.value >= before  # weight only increased


# ----------------------------------------------------------------------
# catalog lifecycle
# ----------------------------------------------------------------------
class TestCatalog:
    def test_register_get_unregister(self):
        cat = GraphCatalog()
        g = make_grid()
        entry = cat.register("g", g)
        assert cat.get("g") is entry
        assert "g" in cat and cat.names() == ["g"]
        with pytest.raises(ServiceError):
            cat.register("g", g)
        cat.register("g", g.copy(), overwrite=True)
        cat.unregister("g")
        assert "g" not in cat
        with pytest.raises(ServiceError):
            cat.get("g")

    def test_unknown_graph_raises(self):
        cat = GraphCatalog()
        with pytest.raises(ServiceError, match="unknown graph"):
            cat.serve(FlowQuery("nope", 0, 1))

    def test_invalidate_drops_artifacts_and_results(self):
        cat = GraphCatalog()
        g = make_grid()
        cat.register("g", g)
        cat.serve(FlowQuery("g", 0, g.n - 1))
        cat.serve(DistanceQuery("g", 0, 1))
        assert len(cat.artifacts) > 0 and len(cat.results) > 0
        removed = cat.invalidate("g")
        assert removed > 0
        assert len(cat.artifacts) == 0 and len(cat.results) == 0

    def test_artifact_lru_bound_holds(self):
        cat = GraphCatalog(max_artifacts=2)
        g = make_grid()
        cat.register("g", g)
        cat.serve(FlowQuery("g", 0, g.n - 1))
        cat.serve(CutQuery("g", 0, g.n - 1, directed=False))
        cat.serve(DistanceQuery("g", 0, 1))
        assert len(cat.artifacts) <= 2
        assert cat.artifacts.evictions > 0
        # evicted artifacts rebuild transparently and answers stay right
        res = cat.serve(FlowQuery("g", 0, g.n - 1)).result
        assert res.value == max_st_flow(g, 0, g.n - 1).value

    def test_set_weights_rejects_wrong_length(self):
        cat = GraphCatalog()
        g = make_grid()
        cat.register("g", g)
        before = list(g.weights)
        with pytest.raises(ServiceError, match="one entry per edge"):
            cat.set_weights("g", weights=[1] * (g.m - 1))
        with pytest.raises(ServiceError, match="one entry per edge"):
            cat.set_weights("g", capacities=[1] * (g.m + 3))
        assert g.weights == before  # rejected repricing left no trace

    def test_unregister_frees_shared_cache_entries(self):
        cat = GraphCatalog()
        g = make_grid()
        cat.register("g", g)
        cat.serve(GirthQuery("g"))  # populates csr + cycle-oracle
        topo = topo_token(g)
        assert any(k[1] == topo for k in shared_cache().keys())
        cat.unregister("g")
        assert not any(len(k) > 1 and k[1] == topo
                       for k in shared_cache().keys())

    def test_set_weights_reprices_queries(self):
        cat = GraphCatalog()
        g = make_grid()
        cat.register("g", g)
        before = cat.serve(GirthQuery("g")).result.value
        cat.set_weights("g", weights=[w + 50 for w in g.weights])
        after = cat.serve(GirthQuery("g")).result
        assert after.value == weighted_girth(g).value
        assert after.value > before


# ----------------------------------------------------------------------
# single-query parity with the per-call entry points
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
class TestQueryParity:
    def test_flow_query(self, backend):
        g = make_grid()
        cat = GraphCatalog()
        cat.register("g", g)
        got = cat.serve(FlowQuery("g", 0, g.n - 1, backend=backend))
        ref = max_st_flow(g, 0, g.n - 1, backend=backend)
        assert got.result == ref
        assert got.backend == backend and got.warm is False

    def test_cut_query(self, backend):
        g = make_grid()
        cat = GraphCatalog()
        cat.register("g", g)
        got = cat.serve(CutQuery("g", 0, g.n - 1, backend=backend))
        ref = min_st_cut(g, 0, g.n - 1, backend=backend)
        assert got.result == ref

    def test_girth_query(self, backend):
        g = make_grid(seed=9)
        cat = GraphCatalog()
        cat.register("g", g)
        got = cat.serve(GirthQuery("g", backend=backend))
        ref = weighted_girth(g, backend=backend)
        assert got.result.value == ref.value
        assert got.result.cycle_edge_ids == ref.cycle_edge_ids

    def test_repeat_is_warm_and_identical(self, backend):
        g = make_grid()
        cat = GraphCatalog()
        cat.register("g", g)
        q = FlowQuery("g", 0, g.n - 1, backend=backend)
        first = cat.serve(q)
        second = cat.serve(q)
        assert second.warm is True
        assert second.result is first.result


class TestDistanceQuery:
    def test_distance_decodes_from_labels(self):
        g = make_grid()
        cat = GraphCatalog()
        cat.register("g", g)
        lab = DualDistanceLabeling(build_bdd(g), default_dual_lengths(g))
        for f, h in [(0, 1), (2, 5), (5, 2), (3, 3)]:
            got = cat.serve(DistanceQuery("g", f, h))
            assert got.backend == "engine"
            assert got.result == lab.distance(f, h)

    def test_distance_backends_bit_identical(self):
        g = make_grid()
        cat = GraphCatalog()
        cat.register("g", g)
        nf = g.num_faces()
        for f in range(nf):
            for h in range(nf):
                eng = cat.serve(DistanceQuery("g", f, h,
                                              backend="engine"))
                leg = cat.serve(DistanceQuery("g", f, h,
                                              backend="legacy"))
                assert eng.backend == "engine"
                assert leg.backend == "legacy"
                assert eng.result == leg.result

    def test_labeling_built_once(self):
        g = make_grid()
        cat = GraphCatalog()
        cat.register("g", g)
        cat.serve(DistanceQuery("g", 0, 1))
        built = cat.artifacts.stats()["misses"]
        for f in range(4):
            cat.serve(DistanceQuery("g", f, 0))
        # only result-cache keys changed; no new artifact builds
        assert cat.artifacts.stats()["misses"] == built


# ----------------------------------------------------------------------
# staleness under in-place mutation (no explicit invalidate call)
# ----------------------------------------------------------------------
class TestStaleness:
    def test_capacity_mutation_reprices_flow(self):
        g = make_grid()
        cat = GraphCatalog()
        cat.register("g", g)
        q = FlowQuery("g", 0, g.n - 1)
        cat.serve(q)
        for eid in range(g.m):
            g.capacities[eid] += 5
        got = cat.serve(q)
        assert got.warm is False
        assert got.result == max_st_flow(g, 0, g.n - 1, backend="engine")

    def test_weight_mutation_reprices_distances(self):
        g = make_grid()
        cat = GraphCatalog()
        cat.register("g", g)
        q = DistanceQuery("g", 1, 3)
        cat.serve(q)
        g.weights[0] += 11
        got = cat.serve(q)
        assert got.warm is False
        lab = DualDistanceLabeling(build_bdd(g), default_dual_lengths(g))
        assert got.result == lab.distance(1, 3)


# ----------------------------------------------------------------------
# planner
# ----------------------------------------------------------------------
class TestPlanner:
    def test_auto_routes_to_engine_by_default(self):
        g = make_grid()
        assert QueryPlanner().plan(FlowQuery("g", 0, 1), g) == "engine"

    def test_engine_min_n_keeps_small_graphs_on_legacy(self):
        g = make_grid()
        planner = QueryPlanner(engine_min_n=g.n + 1)
        assert planner.plan(FlowQuery("g", 0, 1), g) == "legacy"
        assert planner.plan(GirthQuery("g"), g) == "legacy"

    def test_explicit_backend_wins(self):
        g = make_grid()
        planner = QueryPlanner(engine_min_n=10 ** 9)
        q = FlowQuery("g", 0, 1, backend="engine")
        assert planner.plan(q, g) == "engine"

    def test_engine_min_n_uniform_across_query_types(self):
        """Regression: the threshold must gate *every* query type the
        same way — including the cold labeling build behind a
        DistanceQuery (it used to be special-cased as "labels")."""
        g = make_grid()
        queries = [FlowQuery("g", 0, 1), CutQuery("g", 0, 1),
                   GirthQuery("g"), DistanceQuery("g", 0, 1)]
        below = QueryPlanner(engine_min_n=g.n + 1)
        above = QueryPlanner(engine_min_n=g.n)
        for q in queries:
            assert below.plan(q, g) == "legacy", type(q).__name__
            assert above.plan(q, g) == "engine", type(q).__name__

    def test_explicit_backend_wins_for_distance(self):
        g = make_grid()
        planner = QueryPlanner(engine_min_n=10 ** 9)
        q = DistanceQuery("g", 0, 1, backend="engine")
        assert planner.plan(q, g) == "engine"
        planner = QueryPlanner(engine_min_n=0)
        q = DistanceQuery("g", 0, 1, backend="legacy")
        assert planner.plan(q, g) == "legacy"

    def test_bad_backend_rejected(self):
        g = make_grid()
        with pytest.raises(ServiceError):
            QueryPlanner().plan(FlowQuery("g", 0, 1, backend="vroom"), g)
        with pytest.raises(ServiceError):
            QueryPlanner().plan(DistanceQuery("g", 0, 1,
                                              backend="vroom"), g)
        with pytest.raises(ServiceError):
            QueryPlanner(default_backend="vroom")


# ----------------------------------------------------------------------
# workspace pools
# ----------------------------------------------------------------------
class TestWorkspacePool:
    def test_lease_reuses_instances(self):
        built = []
        pool = WorkspacePool(lambda: built.append(1) or object())
        with pool.lease() as ws1:
            pass
        with pool.lease() as ws2:
            assert ws2 is ws1
        assert pool.created == 1 and len(pool) == 1

    def test_concurrent_leases_get_distinct_instances(self):
        pool = WorkspacePool(object)
        a = pool.acquire()
        b = pool.acquire()
        assert a is not b and pool.created == 2
        pool.release(a)
        pool.release(b)
        assert len(pool) == 2

    def test_catalog_pools_are_cached_artifacts(self):
        cat = GraphCatalog()
        entry = cat.register("g", make_grid())
        assert entry.flow_workspace_pool() is entry.flow_workspace_pool()
        with entry.flow_workspace_pool().lease() as ws:
            assert ws.compiled is entry.compiled()
        assert entry.dijkstra_workspace_pool() \
            is entry.dijkstra_workspace_pool()


# ----------------------------------------------------------------------
# batched execution
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_batch_parity_with_per_call(backend):
    g = make_grid(4, 4, seed=5)
    cat = GraphCatalog()
    cat.register("g", g)
    pairs = [(0, g.n - 1), (1, g.n - 2), (g.n // 2, 0)]
    queries = [FlowQuery("g", s, t, backend=backend) for s, t in pairs]
    queries += [CutQuery("g", 0, g.n - 1, backend=backend),
                GirthQuery("g", backend=backend),
                DistanceQuery("g", 0, 2)]
    report = run_batch(cat, queries)
    assert isinstance(report, BatchReport)
    assert [r.query for r in report.results] == queries

    lab = DualDistanceLabeling(build_bdd(g), default_dual_lengths(g))
    expected = [max_st_flow(g, s, t, backend=backend) for s, t in pairs]
    expected += [min_st_cut(g, 0, g.n - 1, backend=backend),
                 weighted_girth(g, backend=backend),
                 lab.distance(0, 2)]
    for got, want in zip(report.values(), expected):
        assert got == want


def test_min_st_cut_rejects_ledger_with_prebuilt_solver():
    from repro.congest import RoundLedger
    from repro.core import PlanarMaxFlow

    g = make_grid()
    solver = PlanarMaxFlow(g, directed=True, backend="engine")
    with pytest.raises(ValueError, match="ledger"):
        min_st_cut(g, 0, g.n - 1, ledger=RoundLedger(), solver=solver)
    with pytest.raises(ValueError, match="does not match"):
        min_st_cut(g.copy(), 0, g.n - 1, solver=solver)


def test_batch_warm_accounting():
    g = make_grid()
    cat = GraphCatalog()
    cat.register("g", g)
    q = FlowQuery("g", 0, g.n - 1)
    report = run_batch(cat, [q, q, q])
    assert report.cold_misses == 1 and report.warm_hits == 2
    kinds = report.by_kind()
    assert kinds["FlowQuery"]["count"] == 3
    assert kinds["FlowQuery"]["warm"] == 2


def test_batch_across_multiple_graphs():
    g1 = make_grid(4, 4, seed=1)
    g2 = make_grid(3, 6, seed=2)
    cat = GraphCatalog()
    cat.register("g1", g1)
    cat.register("g2", g2)
    report = run_batch(cat, [FlowQuery("g1", 0, g1.n - 1),
                             FlowQuery("g2", 0, g2.n - 1)])
    assert report.values()[0] == max_st_flow(g1, 0, g1.n - 1,
                                             backend="engine")
    assert report.values()[1] == max_st_flow(g2, 0, g2.n - 1,
                                             backend="engine")


# ----------------------------------------------------------------------
# process-shard fan-out
# ----------------------------------------------------------------------
def test_sharded_smoke_matches_sequential():
    graphs = {"g1": make_grid(4, 4, seed=1),
              "g2": randomize_weights(wheel(9), seed=2,
                                      directed_capacities=True)}
    queries = [FlowQuery("g1", 0, graphs["g1"].n - 1),
               GirthQuery("g2"),
               FlowQuery("g2", 0, graphs["g2"].n - 1),
               DistanceQuery("g1", 0, 1),
               FlowQuery("g1", 0, graphs["g1"].n - 1)]
    sharded = run_sharded(graphs, queries, max_workers=2)

    cat = GraphCatalog()
    for name, g in graphs.items():
        cat.register(name, g)
    sequential = run_batch(cat, queries)

    assert len(sharded.results) == len(queries)
    for shard_r, seq_r in zip(sharded.results, sequential.results):
        assert shard_r.query == seq_r.query
        assert shard_r.result == seq_r.result
    # warm accounting is per worker catalog since the warm-pool
    # rewrite: with one worker the repeated g1 flow query is a
    # guaranteed result-cache hit (with more it depends on placement)
    single = run_sharded(graphs, queries, max_workers=1)
    assert single.results[4].warm is True
    assert [r.result for r in single.results] == \
        [r.result for r in sequential.results]


def test_sharded_unknown_graph_raises():
    with pytest.raises(ServiceError):
        run_sharded({"g": make_grid()}, [FlowQuery("other", 0, 1)])
