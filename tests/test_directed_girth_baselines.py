"""Tests for the directed girth ([36] route), the centralized baselines,
and the analysis metrics."""

import math
import random

import networkx as nx
import pytest

from repro.analysis.metrics import SeriesRow, fit_exponent, format_table
from repro.baselines.centralized import (
    centralized_max_flow,
    centralized_sssp,
    centralized_weighted_girth,
)
from repro.baselines.distributed_naive import (
    de_vos_round_model,
    naive_maxflow_rounds,
    paper_round_model,
)
from repro.congest import RoundLedger
from repro.core import flow_value_networkx
from repro.core.directed_girth import directed_weighted_girth
from repro.planar.generators import (
    bidirect,
    grid,
    random_planar,
    randomize_weights,
)


def brute_directed_girth(g):
    nxg = nx.DiGraph()
    nxg.add_nodes_from(range(g.n))
    for eid, (u, v) in enumerate(g.edges):
        w = g.weights[eid]
        if nxg.has_edge(u, v):
            nxg[u][v]["weight"] = min(nxg[u][v]["weight"], w)
        else:
            nxg.add_edge(u, v, weight=w)
    best = math.inf
    for u, v, data in nxg.edges(data=True):
        try:
            best = min(best, data["weight"]
                       + nx.dijkstra_path_length(nxg, v, u))
        except nx.NetworkXNoPath:
            pass
    return None if math.isinf(best) else best


class TestDirectedGirth:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_brute_force(self, seed):
        base = randomize_weights(random_planar(16 + seed, seed=seed),
                                 low=1, high=50, seed=seed + 11)
        g = bidirect(base, seed=seed)
        res = directed_weighted_girth(g, leaf_size=12)
        assert res.value == brute_directed_girth(g)

    def test_witness_edge_on_a_cycle(self):
        base = randomize_weights(random_planar(15, seed=4), low=1,
                                 high=30, seed=4)
        g = bidirect(base, seed=4)
        res = directed_weighted_girth(g, leaf_size=12)
        u, v = g.edges[res.witness_edge]
        # the witness closes a cycle: v reaches u
        nxg = nx.DiGraph()
        for eid, (a, b) in enumerate(g.edges):
            nxg.add_edge(a, b)
        assert nx.has_path(nxg, v, u)

    def test_dag_returns_none(self):
        g = randomize_weights(grid(3, 4), seed=1)
        assert directed_weighted_girth(g, leaf_size=10) is None

    def test_ledger(self):
        led = RoundLedger()
        base = randomize_weights(random_planar(12, seed=2), seed=2)
        directed_weighted_girth(bidirect(base, seed=2), leaf_size=10,
                                ledger=led)
        assert any("primal-labeling" in k for k in led.by_phase())

    @pytest.mark.parametrize("seed", range(3))
    def test_engine_labeling_backend_bit_identical(self, seed):
        base = randomize_weights(random_planar(16 + seed, seed=seed),
                                 low=1, high=50, seed=seed + 11)
        g = bidirect(base, seed=seed)
        legacy = directed_weighted_girth(g, leaf_size=12)
        engine = directed_weighted_girth(g, leaf_size=12,
                                         labeling_backend="engine")
        assert (engine.value, engine.witness_edge) == \
            (legacy.value, legacy.witness_edge)

    def test_engine_labeling_backend_dag_returns_none(self):
        g = randomize_weights(grid(3, 4), seed=1)
        assert directed_weighted_girth(
            g, leaf_size=10, labeling_backend="engine") is None

    def test_engine_labeling_charges_no_labeling_rounds(self):
        led = RoundLedger()
        base = randomize_weights(random_planar(12, seed=2), seed=2)
        directed_weighted_girth(bidirect(base, seed=2), leaf_size=10,
                                ledger=led, labeling_backend="engine")
        # the BDD build is backend-independent and stays audited; the
        # labeling levels and the final aggregation are engine-side
        # and must not be
        phases = led.by_phase()
        assert all(k.startswith("bdd/") for k in phases), phases

    def test_labeling_backend_validation(self):
        g = randomize_weights(grid(3, 4), seed=1)
        with pytest.raises(ValueError, match="labeling backend"):
            directed_weighted_girth(g, labeling_backend="fast")
        with pytest.raises(ValueError, match="legacy"):
            directed_weighted_girth(g, backend="engine",
                                    labeling_backend="engine")


class TestCentralizedBaselines:
    @pytest.mark.parametrize("seed", range(4))
    def test_centralized_flow_matches_networkx(self, seed):
        g = randomize_weights(random_planar(25, seed=seed), seed=seed,
                              directed_capacities=True)
        rng = random.Random(seed)
        s, t = rng.sample(range(g.n), 2)
        val, flow = centralized_max_flow(g, s, t, directed=True)
        assert val == flow_value_networkx(g, s, t, directed=True)

    def test_centralized_flow_undirected(self):
        g = randomize_weights(grid(4, 4), seed=3)
        val, flow = centralized_max_flow(g, 0, 15, directed=False)
        assert val == flow_value_networkx(g, 0, 15, directed=False)
        from repro.core import validate_flow

        validate_flow(g, 0, 15, flow, val, directed=False)

    def test_centralized_girth_unit_grid(self):
        assert centralized_weighted_girth(grid(4, 4)) == 4

    def test_centralized_sssp(self):
        g = randomize_weights(grid(3, 5), seed=5)
        dist = centralized_sssp(g, 0)
        nxg = nx.Graph()
        for eid, (u, v) in enumerate(g.edges):
            nxg.add_edge(u, v, weight=g.weights[eid])
        ref = nx.single_source_dijkstra_path_length(nxg, 0)
        assert all(dist[v] == ref[v] for v in range(g.n))


class TestRoundModels:
    def test_paper_beats_devos_at_low_diameter(self):
        n = 10**6
        assert paper_round_model(n, 10) < de_vos_round_model(n, 10)

    def test_devos_wins_at_linear_diameter(self):
        n = 10**4
        d = n // 2
        assert paper_round_model(n, d) > de_vos_round_model(n, d)

    def test_naive_rounds_grow_with_n(self):
        small = naive_maxflow_rounds(grid(3, 5))
        big = naive_maxflow_rounds(grid(6, 10))
        assert big > small


class TestMetrics:
    def test_fit_exponent_quadratic(self):
        xs = [2, 4, 8, 16, 32]
        ys = [x * x for x in xs]
        assert abs(fit_exponent(xs, ys) - 2.0) < 1e-9

    def test_fit_exponent_linear_with_noise(self):
        xs = [2, 4, 8, 16]
        ys = [2.2 * x for x in xs]
        assert abs(fit_exponent(xs, ys) - 1.0) < 0.05

    def test_format_table_rows(self):
        rows = [SeriesRow(family="g", n=10, d=3, rounds=99,
                          extra={"k": 1.5})]
        out = format_table(rows, ["family", "n", "d", "rounds", "k"])
        assert "99" in out and "1.5" in out

    def test_series_row_normalization(self):
        r = SeriesRow(family="g", n=10, d=4, rounds=64)
        assert r.normalized(2) == 4.0
        assert r.normalized(1) == 16.0
