"""Tests for the dual distance labeling (Theorem 2.1) and dual SSSP
(Lemma 2.2): decoded distances must match a centralized Bellman-Ford on
the dual, including with negative lengths and negative-cycle detection."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd import build_bdd
from repro.congest import RoundLedger
from repro.errors import NegativeCycleError
from repro.labeling import DualDistanceLabeling, decode_distance, dual_sssp
from repro.planar import DualGraph
from repro.planar.dual import bellman_ford_arcs
from repro.planar.generators import (
    cylinder,
    grid,
    random_planar,
    randomize_weights,
)
from repro.planar.graph import rev


def reference_apsp(g, lengths):
    """Centralized per-dart-arc Bellman-Ford distances on G*."""
    dual = DualGraph(g)
    arcs = [(g.face_of[d], g.face_of[rev(d)], lengths[d])
            for d in g.darts()]
    return {s: bellman_ford_arcs(dual.num_nodes, arcs, s)
            for s in range(dual.num_nodes)}


def positive_lengths(g, seed=0):
    rng = random.Random(seed)
    return {d: rng.randint(1, 12) for d in g.darts()}


def mixed_lengths(g, seed=0):
    """Negative lengths without negative cycles: derive from a potential
    function (dist-like shifts keep cycle sums unchanged)."""
    rng = random.Random(seed)
    base = {d: rng.randint(1, 10) for d in g.darts()}
    phi = {f: rng.randint(-8, 8) for f in range(g.num_faces())}
    out = {}
    for d in g.darts():
        f, h = g.face_of[d], g.face_of[rev(d)]
        out[d] = base[d] + phi[f] - phi[h]
    return out


@pytest.mark.parametrize("maker,leaf", [
    (lambda: grid(5, 5), 12),
    (lambda: grid(3, 10), 10),
    (lambda: cylinder(3, 7), 12),
    (lambda: random_planar(45, seed=3), 14),
    (lambda: random_planar(40, seed=8, keep=0.8), 12),
])
class TestLabelingExactness:
    def test_positive_lengths(self, maker, leaf):
        g = maker()
        lengths = positive_lengths(g, seed=1)
        bdd = build_bdd(g, leaf_size=leaf)
        lab = DualDistanceLabeling(bdd, lengths)
        ref = reference_apsp(g, lengths)
        for s in range(g.num_faces()):
            for t in range(g.num_faces()):
                assert lab.distance(s, t) == ref[s][t], (s, t)

    def test_negative_lengths(self, maker, leaf):
        g = maker()
        lengths = mixed_lengths(g, seed=2)
        assert any(v < 0 for v in lengths.values())
        bdd = build_bdd(g, leaf_size=leaf)
        lab = DualDistanceLabeling(bdd, lengths)
        ref = reference_apsp(g, lengths)
        for s in range(0, g.num_faces(), 3):
            for t in range(g.num_faces()):
                assert lab.distance(s, t) == ref[s][t], (s, t)


class TestNegativeCycles:
    def test_negative_self_loop_detected(self):
        # a tree edge gives a dual self-loop; make it negative
        g = grid(1, 4)
        lengths = {d: 1 for d in g.darts()}
        lengths[0] = -5
        bdd = build_bdd(g, leaf_size=8)
        with pytest.raises(NegativeCycleError):
            DualDistanceLabeling(bdd, lengths)

    def test_negative_cycle_detected(self):
        g = grid(4, 4)
        # make all arcs around one internal vertex strongly negative in
        # one rotational direction: a negative dual cycle
        v = 5
        lengths = {d: 3 for d in g.darts()}
        for d in g.rotations[v]:
            lengths[d] = -10
        bdd = build_bdd(g, leaf_size=10)
        with pytest.raises(NegativeCycleError):
            DualDistanceLabeling(bdd, lengths)

    def test_no_false_negative_cycle(self):
        g = grid(5, 5)
        lengths = mixed_lengths(g, seed=5)
        bdd = build_bdd(g, leaf_size=10)
        DualDistanceLabeling(bdd, lengths)  # must not raise


class TestLabelProperties:
    def test_label_size_measured(self):
        g = grid(6, 6)
        bdd = build_bdd(g, leaf_size=14)
        lab = DualDistanceLabeling(bdd, positive_lengths(g))
        bits = lab.max_label_bits()
        assert bits > 0
        # Õ(D)-bit shape: generously, |F_X| * depth * word bits
        assert bits <= 32 * (g.diameter() + 4) * (bdd.depth + 2) * 16

    def test_decode_self_distance_zero(self):
        g = grid(4, 4)
        bdd = build_bdd(g, leaf_size=10)
        lab = DualDistanceLabeling(bdd, positive_lengths(g))
        for f in range(g.num_faces()):
            assert lab.distance(f, f) == 0

    def test_single_leaf_bag_graph(self):
        g = grid(3, 3)
        bdd = build_bdd(g, leaf_size=1000)   # everything in one leaf
        lab = DualDistanceLabeling(bdd, positive_lengths(g))
        ref = reference_apsp(g, positive_lengths(g))
        for s in range(g.num_faces()):
            for t in range(g.num_faces()):
                assert lab.distance(s, t) == ref[s][t]

    def test_ledger_charges_levels(self):
        led = RoundLedger()
        g = grid(5, 5)
        bdd = build_bdd(g, leaf_size=10)
        DualDistanceLabeling(bdd, positive_lengths(g), ledger=led)
        assert any(k.startswith("labeling/level") for k in led.by_phase())


class TestDualSssp:
    def test_sssp_distances_and_tree(self):
        g = randomize_weights(grid(5, 5), seed=4)
        lengths = positive_lengths(g, seed=4)
        bdd = build_bdd(g, leaf_size=12)
        lab = DualDistanceLabeling(bdd, lengths)
        res = dual_sssp(lab, source=0)
        ref = reference_apsp(g, lengths)[0]
        for f in range(g.num_faces()):
            assert res.dist[f] == ref[f]
        # every reachable non-source face has a parent arc consistent
        # with its distance
        for f, d in res.parent_dart.items():
            tail = g.face_of[d]
            assert res.dist[tail] + lengths[d] == res.dist[f]

    def test_sssp_tree_reaches_all(self):
        g = grid(4, 6)
        lengths = positive_lengths(g, seed=9)
        bdd = build_bdd(g, leaf_size=12)
        lab = DualDistanceLabeling(bdd, lengths)
        res = dual_sssp(lab, source=2)
        assert set(res.parent_dart) == \
            set(range(g.num_faces())) - {2}

    def test_sssp_with_negative_lengths(self):
        g = grid(4, 4)
        lengths = mixed_lengths(g, seed=11)
        bdd = build_bdd(g, leaf_size=10)
        lab = DualDistanceLabeling(bdd, lengths)
        res = dual_sssp(lab, source=1)
        ref = reference_apsp(g, lengths)[1]
        for f in range(g.num_faces()):
            assert res.dist[f] == ref[f]


class TestPropertyBased:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_random_instances(self, seed):
        rng = random.Random(seed)
        g = random_planar(20 + seed % 25, seed=seed % 40)
        lengths = mixed_lengths(g, seed=seed)
        bdd = build_bdd(g, leaf_size=8 + seed % 10)
        lab = DualDistanceLabeling(bdd, lengths)
        ref = reference_apsp(g, lengths)
        for _ in range(12):
            s = rng.randrange(g.num_faces())
            t = rng.randrange(g.num_faces())
            assert lab.distance(s, t) == ref[s][t]
